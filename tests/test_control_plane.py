"""End-to-end control-plane tests: lifecycle, shedding, failover, and the
global-platform-day scenario's SLO scorecard."""

import pytest

from repro.cluster.autoscale import CapacityAutoscaleConfig
from repro.control.admission import AdmissionConfig
from repro.control.jobs import JobRequest, JobState, RetryPolicy, SloClass
from repro.control.plane import ClusterExecutor, ControlPlane, ModeledExecutor, make_sites
from repro.control.scenario import (
    ScenarioConfig,
    build_scorecard,
    run_global_platform_day,
    scorecard_keys,
)
from repro.sim.engine import Simulator


def two_sites(slots=2):
    return make_sites([
        ("east", "us", (10.0, 0.0), slots),
        ("west", "us", (0.0, 0.0), slots),
    ])


def request(job_id, cls=SloClass.UPLOAD, origin=(0.0, 0.0), at=0.0,
            service=10.0):
    return JobRequest(
        job_id=job_id, slo_class=cls, origin=origin,
        arrival_time=at, service_seconds=service,
    )


def drained(plane):
    report = plane.ledger.conservation_report()
    assert report["ok"], report
    return report


class TestLifecycle:
    def test_all_jobs_complete_and_conserve(self):
        sim = Simulator()
        plane = ControlPlane(sim, two_sites())
        for i in range(6):
            plane.submit(request(f"j{i}", service=5.0))
        sim.run()
        report = drained(plane)
        assert report["counts"]["done"] == 6
        assert plane.queue_wait[SloClass.UPLOAD].total == 6

    def test_dispatch_respects_slot_limits(self):
        sim = Simulator()
        plane = ControlPlane(sim, two_sites(slots=1))
        for i in range(4):
            plane.submit(request(f"j{i}", origin=(0.0, 0.0), service=10.0))
        running = sum(len(s.running) for s in plane.router.sites)
        assert running == 2  # one per site, the rest queued
        sim.run()
        drained(plane)

    def test_retries_then_dead_letter_on_full_failure(self):
        sim = Simulator()
        retry = RetryPolicy(max_attempts=3)
        plane = ControlPlane(
            sim, two_sites(), retry=retry,
            executor=ModeledExecutor(sim, failure_rate=0.999999999),
        )
        job = plane.submit(request("doomed"))
        sim.run()
        assert job.state is JobState.FAILED
        assert job.attempts == 3
        assert plane.retries[SloClass.UPLOAD] == 2
        assert len(plane.dead_letters) == 1
        assert plane.dead_letters.entries[0].job_id == "doomed"
        drained(plane)

    def test_backoff_delays_are_deterministic(self):
        sim = Simulator()
        plane = ControlPlane(
            sim, two_sites(), retry=RetryPolicy(max_attempts=2),
            executor=ModeledExecutor(sim, failure_rate=0.999999999),
        )
        job = plane.submit(request("j", service=10.0))
        sim.run()
        # attempt 1 at t=0 fails at t=10, backoff 2s, attempt 2 at t=12
        # fails at t=22 and the budget is spent.
        assert job.completed_at() == pytest.approx(22.0)
        assert job.retry_wait_seconds == pytest.approx(2.0)


class TestShedding:
    def test_batch_sheds_before_live_on_arrival(self):
        sim = Simulator()
        plane = ControlPlane(
            sim, two_sites(slots=2),  # 4 slots total
            admission=AdmissionConfig(
                live_ceiling=8.0, upload_ceiling=4.0, batch_ceiling=1.5,
            ),
        )
        for i in range(10):
            plane.submit(request(f"b{i}", cls=SloClass.BATCH, service=50.0))
        for i in range(4):
            plane.submit(request(f"l{i}", cls=SloClass.LIVE, service=50.0))
        counts = plane.class_counts()
        assert counts["batch"]["shed"] == 4   # admitted up to 6/4 = 1.5x
        assert counts["live"]["shed"] == 0
        sim.run()
        drained(plane)

    def test_shed_jobs_are_terminal_with_reason(self):
        sim = Simulator()
        plane = ControlPlane(sim, two_sites(slots=1),
                             admission=AdmissionConfig(batch_ceiling=0.5))
        plane.submit(request("b0", cls=SloClass.BATCH, service=5.0))
        shed = plane.submit(request("b1", cls=SloClass.BATCH, service=5.0))
        assert shed.state is JobState.SHED
        reasons = [r.reason for r in plane.ledger.records
                   if r.job_id == "b1" and r.to_state is JobState.SHED]
        assert reasons == ["overload:arrival"]
        sim.run()
        drained(plane)


class TestFailover:
    def test_outage_drains_to_survivor_and_recovers(self):
        sim = Simulator()
        plane = ControlPlane(sim, two_sites(slots=2))
        # Six long jobs near east: 2 run there, 2 spill-run on west, 2
        # queue on east (least-loaded tie goes nearest).
        for i in range(6):
            plane.submit(request(f"j{i}", origin=(10.0, 0.0), service=100.0))
        plane.schedule_outage("east", at=10.0, duration_seconds=500.0)
        sim.run()
        report = drained(plane)
        assert report["counts"]["done"] == 6
        assert plane.outages_started == 1
        assert plane.drained_running > 0      # east's in-flight died
        assert plane.drained_queued > 0       # east's queue moved over
        assert plane.router.failover_routed > 0
        # The cancelled attempts consumed retry budget.
        assert plane.retries[SloClass.UPLOAD] >= plane.drained_running

    def test_total_blackout_parks_instead_of_shedding(self):
        sim = Simulator()
        plane = ControlPlane(sim, make_sites([("only", "us", (0.0, 0.0), 2)]))
        plane.schedule_outage("only", at=5.0, duration_seconds=100.0)
        sim.call_at(50.0, lambda: plane.submit(request("parked", at=50.0)))
        sim.run()
        report = drained(plane)
        assert report["counts"]["done"] == 1
        assert report["counts"]["shed"] == 0
        job = plane.ledger.jobs["parked"]
        # Held QUEUED through the blackout, admitted after recovery.
        assert job.queue_seconds >= 55.0

    def test_outage_sweep_sheds_class_ordered(self):
        sim = Simulator()
        plane = ControlPlane(
            sim, two_sites(slots=2),
            admission=AdmissionConfig(
                live_ceiling=20.0, upload_ceiling=8.0, batch_ceiling=2.0,
            ),
        )
        for i in range(7):
            plane.submit(request(f"b{i}", cls=SloClass.BATCH, service=200.0))
        for i in range(3):
            plane.submit(request(f"l{i}", cls=SloClass.LIVE, service=200.0))
        counts = plane.class_counts()
        assert counts["batch"]["shed"] == 0  # 10 jobs on 4 slots: 2.5 > 2.0?
        plane.site_down("west")
        counts = plane.class_counts()
        assert counts["batch"]["shed"] > 0
        assert counts["live"]["shed"] == 0


class TestDeterminism:
    def test_same_seed_same_scorecard(self):
        config = ScenarioConfig(day_seconds=300.0)
        first = run_global_platform_day(config, seed=3)
        second = run_global_platform_day(config, seed=3)
        assert first.scorecard == second.scorecard
        assert first.end_time == second.end_time

    def test_different_seed_differs(self):
        config = ScenarioConfig(day_seconds=300.0)
        a = run_global_platform_day(config, seed=3)
        b = run_global_platform_day(config, seed=4)
        assert a.scorecard != b.scorecard


class TestScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_global_platform_day(
            ScenarioConfig(day_seconds=900.0), seed=11
        )

    def test_scorecard_keys_are_exact(self, result):
        assert tuple(sorted(result.scorecard)) == scorecard_keys()

    def test_conservation_invariant(self, result):
        card = result.scorecard
        assert card["conservation.ok"] is True
        assert card["jobs.submitted"] == (
            card["jobs.done"] + card["jobs.failed"] + card["jobs.shed"]
        )

    def test_outage_produces_failover_and_ordered_shedding(self, result):
        card = result.scorecard
        assert card["outages.count"] == 1
        assert card["failover.routed"] > 0
        # A healthy fleet keeps queues near-empty, so the drain is
        # dominated by in-flight work (the queued path is unit-tested).
        assert card["failover.drained_running"] > 0
        assert card["class.batch.shed"] > 0
        assert card["class.live.shed"] == 0
        assert card["class.live.completion_rate"] > 0.99

    def test_autoscaler_reacted(self, result):
        assert result.scorecard["autoscale.actions"] > 0

    def test_retries_happen_under_faults(self, result):
        card = result.scorecard
        total_retries = sum(
            card[f"class.{c}.retries"] for c in ("live", "upload", "batch")
        )
        assert total_retries > 0

    def test_control_arm_sheds_nothing(self):
        result = run_global_platform_day(
            ScenarioConfig(day_seconds=900.0, outage=False), seed=11
        )
        card = result.scorecard
        assert card["outages.count"] == 0
        assert card["failover.routed"] == 0
        assert card["jobs.shed"] == 0
        assert card["conservation.ok"] is True

    def test_scorecard_matches_builder(self, result):
        assert result.scorecard == build_scorecard(result.plane)


class TestClusterExecutor:
    def test_jobs_run_as_real_step_graphs(self):
        from repro.cluster import TranscodeCluster, VcuWorker
        from repro.vcu.chip import Vcu
        from repro.vcu.spec import DEFAULT_VCU_SPEC

        sim = Simulator()
        workers = [
            VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"ctl-vcu{i}"))
            for i in range(2)
        ]
        cluster = TranscodeCluster(sim, workers)
        plane = ControlPlane(
            sim, make_sites([("lab", "us", (0.0, 0.0), 2)]),
            executor=ClusterExecutor(cluster),
        )
        for i in range(3):
            plane.submit(request(f"g{i}", service=2.0))
        sim.run()
        report = drained(plane)
        assert report["counts"]["done"] == 3
        assert cluster.stats.completed_graphs == 3

    def test_graphs_outside_the_plane_are_ignored(self):
        from repro.cluster import TranscodeCluster, VcuWorker
        from repro.transcode import build_transcode_graph
        from repro.vcu.chip import Vcu
        from repro.vcu.spec import DEFAULT_VCU_SPEC
        from repro.video.frame import resolution

        sim = Simulator()
        workers = [VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id="solo-vcu"))]
        cluster = TranscodeCluster(sim, workers)
        plane = ControlPlane(
            sim, make_sites([("lab", "us", (0.0, 0.0), 1)]),
            executor=ClusterExecutor(cluster),
        )
        graph = build_transcode_graph(
            video_id="outsider", source=resolution("480p"),
            total_frames=30, fps=30.0,
        )
        cluster.submit(graph)  # not a control-plane job
        plane.submit(request("inside", service=1.0))
        sim.run()
        drained(plane)
        assert cluster.stats.completed_graphs == 2


class TestAutoscale:
    def test_backlog_grows_slots_and_peak_tracks(self):
        sim = Simulator()
        plane = ControlPlane(
            sim, two_sites(slots=2),
            autoscale=CapacityAutoscaleConfig(
                scale_up_pressure=1.0, scale_down_pressure=0.1, step_slots=2,
            ),
            autoscale_interval_seconds=10.0,
        )
        for i in range(20):
            plane.submit(request(f"j{i}", service=200.0))
        plane.start_autoscaler(until=100.0)
        sim.run()
        drained(plane)
        assert plane.autoscaler.actions > 0
        assert plane.peak_capacity > 4

    def test_start_without_config_raises(self):
        sim = Simulator()
        plane = ControlPlane(sim, two_sites())
        with pytest.raises(RuntimeError):
            plane.start_autoscaler(until=10.0)
