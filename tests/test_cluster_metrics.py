"""Tests for utilization/throughput trackers and cluster stats helpers."""

import pytest

from repro.cluster.metrics import ThroughputWindow, UtilizationTracker


class TestUtilizationTracker:
    def test_time_weighted_average(self):
        tracker = UtilizationTracker(start_time=0.0)
        tracker.record(0.0, 1.0)  # 100% for 4s
        tracker.record(4.0, 0.0)  # 0% for 6s
        assert tracker.average(10.0) == pytest.approx(0.4)

    def test_average_extends_last_value(self):
        tracker = UtilizationTracker()
        tracker.record(0.0, 0.5)
        assert tracker.average(8.0) == pytest.approx(0.5)

    def test_zero_span_is_zero(self):
        assert UtilizationTracker().average(0.0) == 0.0

    def test_current_value(self):
        tracker = UtilizationTracker()
        tracker.record(1.0, 0.7)
        assert tracker.current == 0.7

    def test_time_going_backwards_rejected(self):
        tracker = UtilizationTracker()
        tracker.record(5.0, 1.0)
        with pytest.raises(ValueError):
            tracker.record(4.0, 0.5)
        with pytest.raises(ValueError):
            tracker.average(4.0)

    def test_nonzero_start_time(self):
        tracker = UtilizationTracker(start_time=10.0)
        tracker.record(10.0, 1.0)
        tracker.record(15.0, 0.0)
        assert tracker.average(20.0) == pytest.approx(0.5)


class TestThroughputWindow:
    def test_accumulates(self):
        window = ThroughputWindow(start_time=0.0)
        window.record(1.0, 100.0)
        window.record(2.0, 300.0)
        assert window.total_megapixels == 400.0
        assert window.completions == 2
        assert window.mpix_per_second(4.0) == pytest.approx(100.0)

    def test_samples_kept_in_order(self):
        window = ThroughputWindow()
        window.record(1.0, 10.0)
        window.record(3.0, 20.0)
        assert window.samples == [(1.0, 10.0), (3.0, 20.0)]

    def test_zero_span(self):
        window = ThroughputWindow(start_time=5.0)
        assert window.mpix_per_second(5.0) == 0.0
