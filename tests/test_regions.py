"""Tests for the geographic layer and global scheduler."""

import pytest

from repro.cluster.regions import ClusterSite, GlobalScheduler, RoutingDecision


def make_sites():
    return [
        ClusterSite("us-west", region="us", location=(0.0, 0.0), capacity=2),
        ClusterSite("us-east", region="us", location=(10.0, 0.0), capacity=2),
        ClusterSite("eu-west", region="eu", location=(50.0, 0.0), capacity=2),
    ]


class TestRouting:
    def test_prefers_nearest_cluster(self):
        scheduler = GlobalScheduler(make_sites())
        decision = scheduler.route(origin=(1.0, 0.0))
        assert decision.cluster.name == "us-west"
        assert not decision.spilled

    def test_spills_when_local_full(self):
        scheduler = GlobalScheduler(make_sites())
        scheduler.route((1.0, 0.0))
        scheduler.route((1.0, 0.0))  # us-west now full
        decision = scheduler.route((1.0, 0.0))
        assert decision.cluster.name == "us-east"
        assert decision.spilled
        assert scheduler.spill_count == 1

    def test_rejects_when_everything_full(self):
        scheduler = GlobalScheduler(make_sites())
        for _ in range(6):
            served = scheduler.route((0.0, 0.0))
            assert served.cluster is not None
            assert not served.rejected
        decision = scheduler.route((0.0, 0.0))
        assert decision.cluster is None
        assert decision.rejected
        # A full-fleet rejection is not a spill: nothing was served.
        assert not decision.spilled
        assert decision.distance == float("inf")
        assert scheduler.reject_count == 1
        assert scheduler.spill_count == 4  # only the genuinely served spills

    def test_finish_frees_capacity(self):
        scheduler = GlobalScheduler(make_sites())
        decision = scheduler.route((1.0, 0.0))
        decision.cluster.finish()
        again = scheduler.route((1.0, 0.0))
        assert again.cluster.name == "us-west"
        assert not again.spilled

    def test_finish_without_admit_rejected(self):
        site = ClusterSite("x", "us", (0, 0), capacity=1)
        with pytest.raises(ValueError):
            site.finish()

    def test_duplicate_names_rejected(self):
        sites = [ClusterSite("a", "us", (0, 0), 1), ClusterSite("a", "us", (1, 0), 1)]
        with pytest.raises(ValueError):
            GlobalScheduler(sites)

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            GlobalScheduler([])


class TestSiteAvailability:
    def test_down_site_never_admits(self):
        scheduler = GlobalScheduler(make_sites())
        scheduler.set_site_up("us-west", False)
        decision = scheduler.route((0.0, 0.0))
        assert decision.cluster.name == "us-east"
        assert decision.spilled  # served, just not by the nearest site
        site = next(s for s in scheduler.sites if s.name == "us-west")
        assert site.in_flight == 0 and not site.admit()

    def test_fleet_wide_outage_rejects(self):
        scheduler = GlobalScheduler(make_sites())
        for site in scheduler.sites:
            scheduler.set_site_up(site.name, False)
        decision = scheduler.route((0.0, 0.0))
        assert decision.rejected and decision.cluster is None

    def test_recovered_site_admits_again(self):
        scheduler = GlobalScheduler(make_sites())
        site = scheduler.set_site_up("us-west", False)
        assert not site.up
        scheduler.set_site_up("us-west", True)
        assert scheduler.route((0.0, 0.0)).cluster.name == "us-west"

    def test_unknown_site_raises(self):
        with pytest.raises(KeyError):
            GlobalScheduler(make_sites()).set_site_up("mars", True)


class TestRegionalBalance:
    def test_regional_throughput_accounting(self):
        scheduler = GlobalScheduler(make_sites())
        scheduler.route((1.0, 0.0))  # us-west
        scheduler.route((9.0, 0.0))  # us-east
        scheduler.route((50.0, 0.0))  # eu-west
        totals = scheduler.regional_throughput()
        assert totals == {"us": 2, "eu": 1}

    def test_balanced_origins_equalize_region(self):
        # Appendix A.1's ideal: equalized cluster throughput per region.
        scheduler = GlobalScheduler([
            ClusterSite("us-west", "us", (0.0, 0.0), capacity=100),
            ClusterSite("us-east", "us", (10.0, 0.0), capacity=100),
        ])
        for i in range(40):
            origin = (0.0, 0.0) if i % 2 == 0 else (10.0, 0.0)
            scheduler.route(origin)
        assert scheduler.regional_imbalance("us") == pytest.approx(1.0)

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            GlobalScheduler(make_sites()).regional_imbalance("mars")
