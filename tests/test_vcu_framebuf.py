"""Tests for the functional lossless frame-buffer compressor and the
SRAM reference store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vcu.framebuf import (
    block_compressed_bits,
    compress_plane,
    reference_read_fraction,
)
from repro.vcu.reference_store import (
    DEFAULT_STORE_PIXELS,
    TILE_PIXELS,
    ReferenceStore,
    simulate_tile_column_walk,
)
from repro.codec.encoder import encode_video
from repro.codec.profiles import LIBX264


def _reconstructed_plane(tiny_video):
    """A realistic reconstructed reference frame (what the VCU stores)."""
    chunk = encode_video(tiny_video, LIBX264, qp=32)
    return chunk.frames[-1].recon


class TestFrameBufferCompression:
    def test_flat_plane_compresses_hugely(self):
        result = compress_plane(np.full((64, 64), 128.0))
        assert result.ratio > 5.0

    def test_random_noise_does_not_compress(self):
        rng = np.random.default_rng(0)
        result = compress_plane(rng.uniform(0, 255, (64, 64)))
        assert result.ratio < 1.2

    def test_reconstructed_video_near_paper_50_percent(self, tiny_video):
        # Section 3.2: compression reduces reference read bandwidth by
        # approximately 50%.
        plane = _reconstructed_plane(tiny_video)
        fraction = reference_read_fraction(plane)
        assert 0.3 <= fraction <= 0.7

    def test_never_much_worse_than_raw(self):
        rng = np.random.default_rng(1)
        plane = rng.uniform(0, 255, (32, 32))
        result = compress_plane(plane)
        # At most raw size plus one escape bit per block.
        assert result.compressed_bits <= result.raw_bits + (32 * 32) // 256 + 4

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            compress_plane(np.zeros((4, 4, 4)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_compression_counts_positive(self, seed):
        plane = np.random.default_rng(seed).uniform(0, 255, (16, 16))
        result = compress_plane(plane)
        assert result.compressed_bits > 0
        assert result.raw_bits == 8 * 256


class TestReferenceStore:
    def test_miss_then_hit(self):
        store = ReferenceStore()
        assert store.access(0, 0, 0) is False
        assert store.access(0, 0, 0) is True
        assert store.stats.misses == 1
        assert store.stats.hits == 1

    def test_lru_eviction(self):
        store = ReferenceStore(capacity_pixels=2 * TILE_PIXELS)
        store.access(0, 0, 0)
        store.access(0, 0, 1)
        store.access(0, 0, 0)  # refresh tile 0
        store.access(0, 0, 2)  # evicts tile 1 (LRU)
        assert store.access(0, 0, 0) is True
        assert store.access(0, 0, 1) is False

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            ReferenceStore(capacity_pixels=10)

    def test_paper_geometry_fetches_each_pixel_once_per_column(self):
        # Footnote 4: a 144K-pixel store lets each pixel in a tile column
        # be loaded exactly once during that column's processing.
        store = ReferenceStore(DEFAULT_STORE_PIXELS)
        stats = simulate_tile_column_walk(store, frame_height=1024)
        window_pixels = (512 + 2 * 128) * (1024 + 2 * 64)
        fetched = stats.dram_pixels_fetched
        # Everything fetched at most ~once (tile rounding allows slack).
        assert fetched <= window_pixels * 1.15

    def test_undersized_store_refetches(self):
        big = ReferenceStore(DEFAULT_STORE_PIXELS)
        big_stats = simulate_tile_column_walk(big, frame_height=1024)
        small = ReferenceStore(DEFAULT_STORE_PIXELS // 8)
        small_stats = simulate_tile_column_walk(small, frame_height=1024)
        assert small_stats.dram_pixels_fetched > 1.5 * big_stats.dram_pixels_fetched

    def test_store_must_scale_with_reference_count(self):
        # With a store sized for all three reference windows, fetches are
        # ~3x the single-reference walk (each pixel still loaded once);
        # interleaving three references through the single-window store
        # instead thrashes the LRU and blows fetches up well beyond 3x.
        one = simulate_tile_column_walk(ReferenceStore(), 512, references=1)
        sized = simulate_tile_column_walk(
            ReferenceStore(3 * DEFAULT_STORE_PIXELS), 512, references=3
        )
        thrashed = simulate_tile_column_walk(ReferenceStore(), 512, references=3)
        assert sized.dram_pixels_fetched == pytest.approx(
            3 * one.dram_pixels_fetched, rel=0.1
        )
        assert thrashed.dram_pixels_fetched > 1.5 * sized.dram_pixels_fetched
