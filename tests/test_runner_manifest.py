"""Manifest/report layer: canonical JSON, markdown tables, stats block."""

from __future__ import annotations

import json

from repro.runner.executor import ExperimentRun, RunStats
from repro.runner.manifest import (
    DEFAULT_MANIFEST_NAME,
    build_manifest,
    dump_json,
    manifest_text,
    render_markdown,
    render_stats,
    write_manifest,
)
from repro.runner.registry import Experiment, ResultSchema

SCHEMA = ResultSchema(version=1, fields=("x",))


def make_run(summarize=None):
    experiment = Experiment(
        name="demo", title="Demo experiment", fn=lambda ctx: {"x": 0},
        grid=({"q": 1}, {"q": 2}), seed=5, schema=SCHEMA,
        summarize=summarize, sources=("demo",),
    )
    units = experiment.units()
    return ExperimentRun(
        experiment=experiment,
        units=units,
        fingerprints=["a" * 64, "b" * 64],
        results=[{"x": 1}, {"x": 4}],
    )


class TestManifest:
    def test_structure_carries_spec_fingerprints_and_results(self):
        manifest = build_manifest([make_run()])
        entry = manifest["experiments"]["demo"]
        assert manifest["manifest_version"] == 1
        assert entry["title"] == "Demo experiment"
        assert entry["seed"] == 5
        assert entry["schema"] == {"version": 1, "fields": ["x"]}
        assert [u["index"] for u in entry["units"]] == [0, 1]
        assert entry["units"][0]["params"] == {"q": 1}
        assert entry["units"][0]["fingerprint"] == "a" * 64
        assert entry["units"][1]["result"] == {"x": 4}
        assert entry["summary"] == [{"x": 1}, {"x": 4}]

    def test_text_is_canonical_and_newline_terminated(self):
        manifest = build_manifest([make_run()])
        text = manifest_text(manifest)
        assert text.endswith("}\n")
        assert text == manifest_text(json.loads(text))  # round-trip stable
        assert text.index('"benchmark"') < text.index('"experiments"')

    def test_write_and_dump_are_the_same_bytes(self, tmp_path):
        manifest = build_manifest([make_run()])
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_manifest(str(a), manifest)
        dump_json(str(b), manifest)
        assert a.read_bytes() == b.read_bytes()
        assert json.loads(a.read_text()) == manifest

    def test_default_name_matches_this_pr(self):
        assert DEFAULT_MANIFEST_NAME == "BENCH_PR5.json"


class TestMarkdown:
    def test_renders_summary_rows_as_table(self):
        def summarize(results):
            return [
                {"metric": "total", "ours": 5.0, "paper": 6},
                {"metric": "extra", "ours": None, "paper": 7, "note": "tail"},
            ]
        text = render_markdown(build_manifest([make_run(summarize=summarize)]))
        lines = text.splitlines()
        assert lines[0] == "## Demo experiment"
        assert "`demo` — 2 unit(s), seed 5, schema v1" in lines[1]
        # Columns in first-seen order, union over rows.
        assert "| metric | ours | paper | note |" in lines
        assert "| total | 5 | 6 | — |" in lines
        assert "| extra | — | 7 | tail |" in lines

    def test_empty_summary_renders_placeholder(self):
        run = make_run(summarize=lambda results: [])
        assert "(no rows)" in render_markdown(build_manifest([run]))

    def test_experiments_render_name_sorted(self):
        manifest = build_manifest([make_run()])
        manifest["experiments"]["aaa"] = dict(
            manifest["experiments"]["demo"], title="First"
        )
        text = render_markdown(manifest)
        assert text.index("## First") < text.index("## Demo experiment")


class TestStats:
    def test_render_stats_reports_cache_and_shards(self):
        stats = RunStats(
            experiments=2, units=9, cache_hits=8, cache_misses=1,
            cache_errors=1, shards=3, jobs=4, wall_seconds=1.25,
            shard_seconds=[0.5, 0.25, 0.5],
        )
        text = render_stats(stats)
        assert "experiments 2, units 9, shards 3 (jobs 4)" in text
        assert "8 hit(s), 1 miss(es), 1 corrupt entr(ies)" in text
        assert "hit rate 89%" in text
        assert "shard seconds: 0.50, 0.25, 0.50" in text

    def test_hit_rate_handles_empty_run(self):
        assert RunStats().hit_rate == 0.0
