"""Unit tests for the synthetic content generator and vbench suite."""

import numpy as np
import pytest

from repro.video.content import ContentSpec, SyntheticVideo
from repro.video.gop import chunk_metadata, chunk_video
from repro.video.frame import resolution
from repro.video.vbench import VBENCH_SUITE, materialize, vbench_video


def test_determinism_same_seed():
    spec = ContentSpec(name="x", motion=1.0, noise=1.0)
    a = SyntheticVideo(spec, seed=5, proxy_height=36).frames(3)
    b = SyntheticVideo(spec, seed=5, proxy_height=36).frames(3)
    for fa, fb in zip(a, b):
        np.testing.assert_array_equal(fa.data, fb.data)


def test_different_seeds_differ():
    spec = ContentSpec(name="x")
    a = SyntheticVideo(spec, seed=1, proxy_height=36).next_frame()
    b = SyntheticVideo(spec, seed=2, proxy_height=36).next_frame()
    assert not np.array_equal(a.data, b.data)


def test_frames_are_in_range():
    spec = ContentSpec(name="x", noise=5.0, detail=1.0)
    for frame in SyntheticVideo(spec, seed=0, proxy_height=36).frames(4):
        assert frame.data.min() >= 0.0
        assert frame.data.max() <= 255.0


def test_motion_moves_content():
    spec = ContentSpec(name="x", motion=3.0, noise=0.0, sprites=4)
    gen = SyntheticVideo(spec, seed=0, proxy_height=36)
    first, second = gen.next_frame(), gen.next_frame()
    assert np.abs(first.data - second.data).mean() > 0.05


def test_static_spec_is_nearly_static():
    spec = ContentSpec(name="x", motion=0.0, noise=0.0, sprites=2)
    gen = SyntheticVideo(spec, seed=0, proxy_height=36)
    first, second = gen.next_frame(), gen.next_frame()
    assert np.abs(first.data - second.data).mean() < 1e-4


def test_scene_change_resets_content():
    spec = ContentSpec(name="x", motion=0.0, noise=0.0, scene_change_every=2)
    gen = SyntheticVideo(spec, seed=0, proxy_height=36)
    frames = gen.frames(3)
    # Frames 0,1 same scene; frame 2 is a new scene.
    assert np.abs(frames[0].data - frames[1].data).mean() < 1e-4
    assert np.abs(frames[1].data - frames[2].data).mean() > 1.0


def test_frame_indices_increment():
    spec = ContentSpec(name="x")
    frames = SyntheticVideo(spec, seed=0, proxy_height=36).frames(3)
    assert [f.index for f in frames] == [0, 1, 2]


def test_nominal_resolution_respected():
    spec = ContentSpec(name="x", resolution_name="2160p")
    video = SyntheticVideo(spec, seed=0, proxy_height=36).video(2)
    assert video.nominal == resolution("2160p")


class TestVbench:
    def test_suite_has_15_titles(self):
        assert len(VBENCH_SUITE) == 15
        assert len({v.name for v in VBENCH_SUITE}) == 15

    def test_legend_titles_present(self):
        names = {v.name for v in VBENCH_SUITE}
        for expected in ("presentation", "desktop", "holi", "game_1", "cricket"):
            assert expected in names

    def test_difficulty_ranks_are_a_permutation(self):
        ranks = sorted(v.difficulty_rank for v in VBENCH_SUITE)
        assert ranks == list(range(15))

    def test_holi_is_hardest(self):
        holi = vbench_video("holi")
        assert holi.difficulty_rank == 14
        assert holi.spec.noise > vbench_video("presentation").spec.noise

    def test_unknown_title_raises(self):
        with pytest.raises(KeyError):
            vbench_video("nope")

    def test_materialize(self):
        video = materialize(vbench_video("desktop"), frame_count=2, seed=1)
        assert len(video) == 2
        assert video.nominal == resolution("1080p")


class TestChunking:
    def test_chunk_video_partitions_frames(self, tiny_video):
        chunks = chunk_video(tiny_video, gop_frames=2, video_id="v")
        assert [c.frame_count for c in chunks] == [2, 2, 1]
        assert [c.index for c in chunks] == [0, 1, 2]
        assert all(c.video_id == "v" for c in chunks)

    def test_chunk_ids_unique(self, tiny_video):
        chunks = chunk_video(tiny_video, gop_frames=2, video_id="v")
        assert len({c.chunk_id for c in chunks}) == len(chunks)

    def test_chunk_duration(self, tiny_video):
        chunks = chunk_video(tiny_video, gop_frames=3)
        assert chunks[0].duration_seconds == pytest.approx(3 / tiny_video.fps)

    def test_metadata_chunking_matches_paper_example(self):
        # A 150-frame 2160p chunk is 5 seconds at 30 FPS (Section 4.5).
        chunks = chunk_metadata("v", total_frames=150, fps=30, nominal=resolution("2160p"))
        assert len(chunks) == 1
        assert chunks[0].duration_seconds == pytest.approx(5.0)
        assert chunks[0].frames is None

    def test_metadata_chunking_counts(self):
        chunks = chunk_metadata("v", total_frames=400, fps=30, nominal=resolution("720p"))
        assert [c.frame_count for c in chunks] == [150, 150, 100]

    def test_bad_gop_rejected(self, tiny_video):
        with pytest.raises(ValueError):
            chunk_video(tiny_video, gop_frames=0)
