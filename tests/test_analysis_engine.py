"""Engine-level tests: pragmas, baseline, reporters, CLI, self-lint."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    analyze_source,
    default_rules,
    iter_python_files,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.reporters import JSON_VERSION, to_document
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

BAD_SOURCE = textwrap.dedent(
    """\
    import time


    def stamp():
        return time.time()
    """
)


def lint(source, path="src/repro/fake.py"):
    return analyze_source(textwrap.dedent(source), path)


# --------------------------------------------------------------------- #
# Pragma semantics


class TestPragmas:
    def test_line_pragma_suppresses_only_its_line(self):
        findings, suppressed = lint(
            """\
            import time


            def stamp():
                a = time.time()  # lint: allow=determinism -- one-off
                b = time.time()
                return a, b
            """
        )
        assert suppressed == 1
        # The unpragma'd read on line 6 is flagged directly *and* taints
        # ``b``, which then leaks through the return on line 7.  The
        # pragma'd read on line 5 neither fires nor seeds taint.
        assert [(f.rule, f.line) for f in findings] == [
            ("determinism", 6), ("determinism-taint", 7),
        ]

    def test_line_pragma_is_rule_specific(self):
        findings, suppressed = lint(
            """\
            import time


            def stamp():
                return time.time()  # lint: allow=hygiene -- wrong rule id
            """
        )
        assert suppressed == 0
        assert [f.rule for f in findings] == ["determinism"]

    def test_file_pragma_suppresses_whole_file(self):
        findings, suppressed = lint(
            """\
            # lint: allow-file=determinism -- wall-clock shim module
            import time


            def stamp():
                return time.time() + time.perf_counter()
            """
        )
        assert findings == []
        assert suppressed == 2

    def test_comma_separated_rules_in_one_pragma(self):
        findings, suppressed = lint(
            """\
            import time


            def stamp(log=[]):  # lint: allow=hygiene,determinism
                log.append(time.time())  # lint: allow=determinism
                return log
            """
        )
        assert findings == []
        assert suppressed == 2

    def test_pragma_inside_string_literal_is_inert(self):
        findings, _ = lint(
            """\
            import time

            DOC = "example:  # lint: allow-file=determinism"


            def stamp():
                return time.time()
            """
        )
        assert [f.rule for f in findings] == ["determinism"]


# --------------------------------------------------------------------- #
# Baseline


class TestBaseline:
    def _findings(self):
        findings, _ = analyze_source(BAD_SOURCE, "src/repro/fake.py")
        assert findings
        return findings

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        new, grandfathered = loaded.filter(findings)
        assert new == []
        assert grandfathered == len(findings)

    def test_multiplicity_absorbs_exact_count(self):
        findings = self._findings()
        doubled = findings + findings
        baseline = Baseline.from_findings(findings)
        new, grandfathered = baseline.filter(doubled)
        # The duplicate occurrences beyond the baselined count are new.
        assert grandfathered == len(findings)
        assert new == findings

    def test_baseline_is_line_number_insensitive(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        shifted, _ = analyze_source(
            "# a new leading comment shifts every line\n" + BAD_SOURCE,
            "src/repro/fake.py",
        )
        new, _ = baseline.filter(shifted)
        assert new == []

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_rejects_malformed_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": {"k": "many"}}))
        with pytest.raises(ValueError, match="malformed"):
            Baseline.load(path)


# --------------------------------------------------------------------- #
# Reporters


class TestReporters:
    def _result(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "bad.py").write_text(BAD_SOURCE)
        return run_lint(tmp_path, targets=["src"])

    def test_json_schema(self, tmp_path):
        result = self._result(tmp_path)
        doc = json.loads(render_json(result))
        assert doc["version"] == JSON_VERSION
        assert doc["clean"] is False
        assert doc["files_scanned"] == 1
        assert doc["suppressed"] == 0
        assert doc["grandfathered"] == 0
        assert doc["parse_errors"] == []
        assert doc["findings"] == [
            {
                "rule": "determinism",
                "path": "src/bad.py",
                "line": 5,
                "col": 11,
                "message": doc["findings"][0]["message"],
            }
        ]
        assert "wall-clock" in doc["findings"][0]["message"]

    def test_text_report_lists_rule_file_line(self, tmp_path):
        result = self._result(tmp_path)
        text = render_text(result)
        assert "src/bad.py:5:11: determinism" in text
        assert "1 new finding(s) in 1 file(s)" in text

    def test_to_document_matches_render_json(self, tmp_path):
        result = self._result(tmp_path)
        assert json.loads(render_json(result)) == to_document(result)


# --------------------------------------------------------------------- #
# Driver


class TestDriver:
    def test_iter_python_files_sorted_and_deduped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "solo.py").write_text("x = 1\n")
        files = iter_python_files(tmp_path, ["pkg", "solo.py", "pkg"])
        assert [f.name for f in files] == ["a.py", "b.py", "solo.py"]

    def test_parse_errors_are_reported_not_raised(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "broken.py").write_text("def broken(:\n")
        result = run_lint(tmp_path, targets=["src"])
        assert not result.clean
        assert "broken.py" in result.parse_errors[0]

    def test_default_rules_are_fresh_instances(self):
        first, second = default_rules(), default_rules()
        assert {r.id for r in first} == {
            "determinism", "determinism-taint", "obs-hook", "sim-yield",
            "ordered-iteration", "float-parity", "hygiene",
        }
        assert all(a is not b for a, b in zip(first, second))


# --------------------------------------------------------------------- #
# CLI


class TestLintCli:
    def _seed(self, tmp_path, source=BAD_SOURCE):
        (tmp_path / "src").mkdir(exist_ok=True)
        (tmp_path / "src" / "bad.py").write_text(source)

    def test_exit_nonzero_and_listing_on_violation(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "src"]) == 1
        out = capsys.readouterr().out
        assert "src/bad.py:5:11: determinism" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._seed(tmp_path, "x = 1\n")
        assert main(["lint", "--root", str(tmp_path), "src"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_json_flag_emits_schema(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "determinism"

    def test_baseline_workflow(self, tmp_path, capsys):
        self._seed(tmp_path)
        # 1. grandfather current findings
        assert main(
            ["lint", "--root", str(tmp_path), "--baseline", "--update-baseline", "src"]
        ) == 0
        assert (tmp_path / DEFAULT_BASELINE_NAME).exists()
        capsys.readouterr()
        # 2. clean against the baseline
        assert main(["lint", "--root", str(tmp_path), "--baseline", "src"]) == 0
        assert "grandfathered" in capsys.readouterr().out
        # 3. a NEW violation still fails
        (tmp_path / "src" / "worse.py").write_text("import random\n")
        assert main(["lint", "--root", str(tmp_path), "--baseline", "src"]) == 1
        assert "worse.py:1:0: determinism" in capsys.readouterr().out

    def test_missing_baseline_file_is_an_error(self, tmp_path, capsys):
        self._seed(tmp_path, "x = 1\n")
        assert main(["lint", "--root", str(tmp_path), "--baseline", "src"]) == 2
        assert "baseline file not found" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Self-lint: the repo must stay clean against its committed baseline


class TestSelfLint:
    def test_repo_is_clean_against_committed_baseline(self):
        baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
        assert baseline_path.exists(), "committed lint baseline is missing"
        baseline = Baseline.load(baseline_path)
        result = run_lint(REPO_ROOT, baseline=baseline)
        assert result.parse_errors == []
        assert result.new_findings == [], render_text(result)

    def test_committed_baseline_is_minimal(self):
        # Policy: fix or pragma, don't grandfather. The committed
        # baseline must stay empty; delete this test only with a very
        # good reason in the PR description.
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        assert len(baseline) == 0


# --------------------------------------------------------------------- #
# Typing: the strict modules must stay mypy-clean (skips when mypy is
# absent; CI installs it via the `lint` extra)


class TestTyping:
    def test_strict_modules_pass_mypy(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [
                sys.executable, "-m", "mypy",
                "src/repro/obs", "src/repro/sim/rng.py",
                "src/repro/sim/calendar.py", "src/repro/analysis",
                "src/repro/control",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
