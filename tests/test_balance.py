"""Tests for the Appendix A system-balance analysis."""

import pytest

from repro.balance import (
    NetworkBalance,
    fleet_dram_requirement,
    host_resource_table,
    mot_footprint_mib,
    network_transcode_limit_gpix_s,
    sot_footprint_mib,
    vcu_ceiling_per_host,
)
from repro.balance.host import host_headroom
from repro.vcu.spec import EncodingMode


class TestNetworkBalance:
    def test_raw_limit_near_600_gpix(self):
        assert NetworkBalance().raw_limit_gpix_s == pytest.approx(610.0, rel=0.02)

    def test_effective_limit_near_153_gpix(self):
        assert network_transcode_limit_gpix_s() == pytest.approx(153.0, rel=0.02)

    def test_pcie_control_traffic_tiny(self):
        # <4 KiB per frame: ~0.6 Gbps for all-2160p at the 153 Gpix/s
        # target (Appendix A.2).
        balance = NetworkBalance()
        frames_per_second = 153e9 / (3840 * 2160)
        gbps = balance.pcie_control_gbps(frames_per_second)
        assert gbps == pytest.approx(0.6, rel=0.1)

    def test_realtime_vcu_ceiling_is_30(self):
        ceiling = vcu_ceiling_per_host(EncodingMode.LOW_LATENCY_ONE_PASS)
        assert ceiling == 30

    def test_offline_ceiling_much_higher(self):
        offline = vcu_ceiling_per_host(EncodingMode.OFFLINE_TWO_PASS)
        realtime = vcu_ceiling_per_host(EncodingMode.LOW_LATENCY_ONE_PASS)
        assert offline > 4 * realtime  # paper: 150 with its rounder 5x figure

    def test_20_vcus_is_conservative(self):
        # Appendix A.5: the deployed 20 VCUs per host sit well under the
        # network-derived ceilings.
        assert 20 < vcu_ceiling_per_host(EncodingMode.LOW_LATENCY_ONE_PASS)


class TestDramFootprints:
    def test_paper_bands(self):
        # ~700 MiB per 2160p MOT, ~500 MiB per SOT (Appendix A.4).
        assert 500 <= mot_footprint_mib() <= 900
        assert 350 <= sot_footprint_mib() <= 650

    def test_mot_saves_footprint_per_output(self):
        from repro.video.frame import output_ladder, resolution

        ladder_px = sum(r.pixels for r in output_ladder(resolution("2160p")))
        mot_per_px = mot_footprint_mib() / ladder_px
        sot_per_px = sot_footprint_mib() / resolution("2160p").pixels
        assert mot_per_px < sot_per_px

    def test_8gib_suffices_4gib_does_not(self):
        # The appendix's capacity conclusion: 8 GiB per VCU supports the
        # worst case; 4 GiB would be insufficient.
        requirement = fleet_dram_requirement(EncodingMode.OFFLINE_TWO_PASS)
        assert requirement.fits_8gib
        assert not requirement.fits_4gib

    def test_low_latency_needs_less(self):
        low = fleet_dram_requirement(EncodingMode.LOW_LATENCY_ONE_PASS)
        offline = fleet_dram_requirement(EncodingMode.OFFLINE_TWO_PASS)
        assert low.required_gib < offline.required_gib
        assert low.fits_8gib

    def test_mot_reduces_requirement(self):
        sot = fleet_dram_requirement(EncodingMode.OFFLINE_TWO_PASS, use_mot=False)
        mot = fleet_dram_requirement(EncodingMode.OFFLINE_TWO_PASS, use_mot=True)
        assert mot.required_gib < sot.required_gib


class TestHostResources:
    def test_table2_totals(self):
        rows = host_resource_table(153.0)
        total = rows[-1]
        assert total.use == "Total"
        assert total.logical_cores == pytest.approx(55.0, rel=0.01)
        assert total.dram_bandwidth_gbps == pytest.approx(712.0, rel=0.01)

    def test_table2_printed_rows(self):
        rows = {r.use: r for r in host_resource_table(153.0)}
        assert rows["Transcoding overheads"].logical_cores == pytest.approx(42.0, rel=0.01)
        assert rows["Network & RPC"].dram_bandwidth_gbps == pytest.approx(300.0, rel=0.01)

    def test_scales_linearly(self):
        half = host_resource_table(76.5)[-1]
        assert half.logical_cores == pytest.approx(27.5, rel=0.01)

    def test_headroom_about_half_the_host(self):
        # Appendix A.3: the scaled values are about half of what the
        # target host system provides.
        headroom = host_headroom()
        assert 0.4 <= headroom["core_fraction"] <= 0.65
        assert 0.35 <= headroom["dram_fraction"] <= 0.55

    def test_rejects_bad_throughput(self):
        with pytest.raises(ValueError):
            host_resource_table(0)
