"""Tests for the VCU chip model: tasks, resource requests, health."""

import pytest

from repro.vcu.chip import (
    Vcu,
    VcuTask,
    decode_core_seconds,
    dram_footprint_bytes,
    encode_core_seconds,
    processing_seconds,
    resource_request,
)
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.vcu.telemetry import FaultKind
from repro.video.frame import output_ladder, resolution

SPEC = DEFAULT_VCU_SPEC


def make_task(codec="h264", mode=EncodingMode.OFFLINE_TWO_PASS, source="1080p",
              is_mot=True, software_decode=False, frames=150, fps=30.0):
    src = resolution(source)
    outputs = output_ladder(src) if is_mot else [src]
    return VcuTask(
        codec=codec, mode=mode, input_resolution=src, outputs=outputs,
        frame_count=frames, fps=fps, is_mot=is_mot, software_decode=software_decode,
    )


class TestVcuTask:
    def test_pixels_accounting(self):
        task = make_task()
        ladder_px = sum(r.pixels for r in output_ladder(resolution("1080p")))
        assert task.output_pixels == ladder_px * 150
        assert task.input_pixels == resolution("1080p").pixels * 150
        assert task.duration_seconds == pytest.approx(5.0)

    def test_sot_single_output_enforced(self):
        with pytest.raises(ValueError):
            VcuTask(
                codec="h264", mode=EncodingMode.OFFLINE_TWO_PASS,
                input_resolution=resolution("1080p"),
                outputs=[resolution("1080p"), resolution("720p")],
                frame_count=10, fps=30, is_mot=False,
            )

    def test_outputs_required(self):
        with pytest.raises(ValueError):
            make_task().__class__(
                codec="h264", mode=EncodingMode.OFFLINE_TWO_PASS,
                input_resolution=resolution("1080p"), outputs=[],
                frame_count=10, fps=30,
            )


class TestCosts:
    def test_mot_encode_cheaper_per_pixel_than_sot(self):
        mot = make_task(is_mot=True)
        sot = make_task(is_mot=False)
        mot_per_px = encode_core_seconds(mot, SPEC) / mot.output_pixels
        sot_per_px = encode_core_seconds(sot, SPEC) / sot.output_pixels
        assert mot_per_px < sot_per_px

    def test_software_decode_frees_hardware_decoders(self):
        hw = make_task(software_decode=False)
        sw = make_task(software_decode=True)
        assert decode_core_seconds(hw, SPEC) > 0
        assert decode_core_seconds(sw, SPEC) == 0.0

    def test_offline_decodes_twice(self):
        offline = make_task(mode=EncodingMode.OFFLINE_TWO_PASS)
        realtime = make_task(mode=EncodingMode.LOW_LATENCY_ONE_PASS)
        assert decode_core_seconds(offline, SPEC) == pytest.approx(
            2 * decode_core_seconds(realtime, SPEC)
        )

    def test_dram_footprint_paper_bands(self):
        # Appendix A.4: ~700 MiB per 2160p MOT, ~500 MiB per SOT.
        MiB = 1024**2
        mot = dram_footprint_bytes(make_task(source="2160p", is_mot=True), SPEC) / MiB
        sot = dram_footprint_bytes(make_task(source="2160p", is_mot=False), SPEC) / MiB
        assert 500 <= mot <= 900
        assert 350 <= sot <= 650
        assert mot > sot

    def test_low_latency_footprint_smaller(self):
        offline = dram_footprint_bytes(make_task(source="2160p"), SPEC)
        low = dram_footprint_bytes(
            make_task(source="2160p", mode=EncodingMode.LOW_LATENCY_ONE_PASS), SPEC
        )
        assert low < offline


class TestResourceRequest:
    def test_request_has_scheduler_dimensions(self):
        request = resource_request(make_task(), SPEC, target_speedup=5.0)
        assert set(request) == {"milliencode", "millidecode", "dram_bytes", "host_decode"}
        assert 0 < request["milliencode"] <= SPEC.milliencode
        assert 0 < request["millidecode"] <= SPEC.millidecode

    def test_faster_target_needs_more_cores(self):
        slow = resource_request(make_task(), SPEC, target_speedup=1.0)
        fast = resource_request(make_task(), SPEC, target_speedup=4.0)
        assert fast["milliencode"] == pytest.approx(4 * slow["milliencode"], rel=0.01)

    def test_decode_safety_factor_inflates_decode_only(self):
        base = resource_request(make_task(), SPEC, target_speedup=5.0)
        inflated = resource_request(
            make_task(), SPEC, target_speedup=5.0, decode_safety_factor=2.0
        )
        assert inflated["millidecode"] == pytest.approx(2 * base["millidecode"])
        assert inflated["milliencode"] == base["milliencode"]

    def test_software_decode_uses_synthetic_dimension(self):
        request = resource_request(make_task(software_decode=True), SPEC, 5.0)
        assert request["millidecode"] == 0.0
        assert request["host_decode"] > 0

    def test_processing_time_respects_grant(self):
        task = make_task()
        request = resource_request(task, SPEC, target_speedup=5.0)
        wall = processing_seconds(task, SPEC, request)
        assert wall == pytest.approx(task.duration_seconds / 5.0, rel=0.05)

    def test_processing_requires_cores(self):
        with pytest.raises(ValueError):
            processing_seconds(make_task(), SPEC, {"milliencode": 0})

    def test_bad_speedup_rejected(self):
        with pytest.raises(ValueError):
            resource_request(make_task(), SPEC, target_speedup=0)


class TestVcuHealth:
    def test_admission_and_release(self):
        vcu = Vcu(SPEC)
        request = resource_request(make_task(), SPEC, 5.0)
        assert vcu.try_admit(request)
        assert vcu.encoder_utilization() > 0
        vcu.release(request)
        assert vcu.resources.is_idle()
        assert vcu.completed_tasks == 1

    def test_disabled_vcu_rejects_work(self):
        vcu = Vcu(SPEC)
        vcu.disable()
        assert not vcu.try_admit({"milliencode": 1})

    def test_golden_check_detects_corruption(self):
        vcu = Vcu(SPEC)
        assert vcu.golden_check()
        vcu.mark_corrupt()
        assert not vcu.golden_check()
        vcu.enable()
        assert vcu.golden_check()

    def test_telemetry_thresholds(self):
        vcu = Vcu(SPEC)
        assert not vcu.telemetry.should_disable()
        vcu.telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=3)
        assert vcu.telemetry.should_disable()

    def test_telemetry_snapshot(self):
        vcu = Vcu(SPEC)
        vcu.telemetry.record(FaultKind.RESET)
        snapshot = vcu.telemetry.snapshot()
        assert snapshot["reset"] == 1.0
        assert "temperature_c" in snapshot
