"""CLI exit-code and end-to-end coverage for ``run``, ``perf``, ``report``.

Every handler must return its own rc (``main`` forwards it), the ``run``
subcommand must produce a parseable manifest plus a warm-cache second
invocation, and the historical perf/report paths keep their contracts.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main

# table2 is the cheapest registered experiment (one analytic unit), so
# the CLI round-trips stay fast enough for tier-1.
EXPERIMENT = "table2-host-resources"


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestRunSubcommand:
    def test_end_to_end_writes_manifest(self, workdir, capsys):
        rc = main(["run", EXPERIMENT, "--out", "manifest.json"])
        assert rc == 0
        captured = capsys.readouterr()
        manifest = json.loads((workdir / "manifest.json").read_text())
        assert EXPERIMENT in manifest["experiments"]
        entry = manifest["experiments"][EXPERIMENT]
        assert len(entry["units"]) == 1
        assert all(len(u["fingerprint"]) == 64 for u in entry["units"])
        assert "## " in captured.out          # markdown report
        assert "cache:" in captured.out       # stats block
        assert "wrote manifest.json" in captured.err

    def test_second_invocation_is_all_cache_hits(self, workdir, capsys):
        argv = ["run", EXPERIMENT, "--out", "manifest.json"]
        assert main(argv) == 0
        cold = (workdir / "manifest.json").read_bytes()
        capsys.readouterr()
        assert main(argv) == 0
        assert "hit rate 100%" in capsys.readouterr().out
        assert (workdir / "manifest.json").read_bytes() == cold

    def test_json_flag_prints_exactly_the_manifest(self, workdir, capsys):
        assert main(["run", EXPERIMENT, "--no-cache", "--json",
                     "--out", "manifest.json"]) == 0
        out = capsys.readouterr().out
        assert out == (workdir / "manifest.json").read_text()

    def test_unknown_experiment_is_rc2(self, workdir, capsys):
        assert main(["run", "no-such-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert not (workdir / "BENCH_PR5.json").exists()


class TestPerfSubcommand:
    def test_smoke_end_to_end_rc0(self, workdir, capsys):
        rc = main(["perf", "--smoke", "--out", "perf.json"])
        assert rc == 0
        report = json.loads((workdir / "perf.json").read_text())
        assert report  # non-empty machine-readable report
        assert "wrote perf.json" in capsys.readouterr().out


class TestReportSubcommand:
    def test_valid_trace_rc0(self, workdir, capsys):
        with obs.installed() as hub:
            hub.emit("step", "unit", t0=0.0, t1=1.0)
            hub.trace.write_jsonl("run.jsonl")
        assert main(["report", "run.jsonl"]) == 0
        assert "Trace report:" in capsys.readouterr().out

    def test_missing_trace_rc2(self, workdir, capsys):
        assert main(["report", "missing.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err
