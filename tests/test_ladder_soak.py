"""Soak test: a 1000-segment live stream survives faults and an outage.

One long-running live leg drips a thousand segments through a small
two-region fleet while Poisson device faults (hangs + silent
corruptions) run for the whole show and one region's hosts go dark
mid-stream.  The invariants under all of that pressure:

* no segment is lost (every released segment is manifested) and none is
  double-encoded (the assembler raises ``BarrierViolation`` on a
  duplicate completion, so mere termination proves it);
* the manifest is emitted strictly in segment order with monotone
  timestamps;
* the latency scorecard stays finite: TTFS recorded once, stall
  percentiles defined, deadline accounting consistent.
"""

from __future__ import annotations

import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.control.live_ladder import stable_host
from repro.failures import FaultInjector
from repro.sim import Simulator
from repro.sim.rng import split_rng
from repro.transcode import LadderDispatcher, StreamKind, StreamSpec
from repro.video.frame import resolution

SEGMENTS = 1000
SEGMENT_SECONDS = 2.0
SHOW_SECONDS = SEGMENTS * SEGMENT_SECONDS


@pytest.fixture(scope="module")
def soak_run():
    sim = Simulator()
    # Two regions, two hosts each, two VCUs per host; a 480p source keeps
    # the per-segment fan-out at four rungs so the soak stays fast.
    hosts = [
        stable_host(f"{region}-h{i}", 2)
        for region in ("east", "west")
        for i in range(2)
    ]
    workers = [VcuWorker(v, host=h) for h in hosts for v in h.vcus]
    cpus = [CpuWorker(cores=16, name=f"soak-cpu{i}") for i in range(2)]
    cluster = TranscodeCluster(
        sim, workers, cpus, seed=split_rng(17, "soak/cluster")
    )
    dispatcher = LadderDispatcher(sim, cluster)
    spec = StreamSpec(
        stream_id="soak-live",
        kind=StreamKind.LIVE,
        source=resolution("480p"),
        segment_count=SEGMENTS,
        segment_seconds=SEGMENT_SECONDS,
        deadline_seconds=8.0,
    )
    session = dispatcher.start_stream(spec)

    injector = FaultInjector(
        sim,
        [v for h in hosts for v in h.vcus],
        seed=split_rng(17, "soak/faults"),
    )
    injector.random_hangs(2.0, until=SHOW_SECONDS)
    injector.random_corruptions(2.0, until=SHOW_SECONDS)
    injector.regional_outage(
        at_time=SHOW_SECONDS / 2,
        hosts=[h for h in hosts if h.host_id.startswith("east-")],
        duration=SHOW_SECONDS * 0.1,
        stagger_seconds=5.0,
    )
    sim.run()
    return sim, cluster, dispatcher, session


def test_stream_drains_completely(soak_run):
    sim, _, dispatcher, session = soak_run
    assert session.done
    assert dispatcher.unfinished() == []
    assert len(session.watcher.released) == SEGMENTS
    assert sim.now >= SHOW_SECONDS


def test_no_segment_lost_or_double_encoded(soak_run):
    _, _, _, session = soak_run
    # Double encodes would have raised BarrierViolation during the run;
    # loss shows up as released-but-unpublished segments here.
    assert session.assembler.pending_indices() == []
    indices = [e.index for e in session.assembler.entries]
    assert indices == list(range(SEGMENTS))
    assert len(set(indices)) == SEGMENTS


def test_manifest_timestamps_are_ordered_and_monotone(soak_run):
    _, _, _, session = soak_run
    emitted = [e.emitted_at for e in session.assembler.entries]
    assert emitted == sorted(emitted)
    for entry in session.assembler.entries:
        assert entry.emitted_at >= entry.aligned_at >= entry.released_at
        assert entry.stall_seconds >= 0.0


def test_fault_pressure_actually_hit_the_stream(soak_run):
    _, cluster, _, _ = soak_run
    assert cluster.stats.hangs_detected >= 1
    assert cluster.stats.retries >= 1
    assert cluster.stats.corrupt_caught >= 1


def test_latency_scorecard_stays_finite(soak_run):
    _, _, dispatcher, session = soak_run
    metrics = dispatcher.metrics
    assert metrics.segments_released == metrics.manifests_emitted == SEGMENTS
    assert metrics.ttfs.total == 1
    ttfs = session.assembler.time_to_first_segment
    assert ttfs is not None and 0.0 < ttfs < SHOW_SECONDS
    assert metrics.manifest_stall.total == SEGMENTS
    for quantile in (0.5, 0.9, 0.99):
        stall = metrics.manifest_stall.quantile(quantile)
        assert 0.0 <= stall < float("inf")
    assert metrics.deadlines_tracked == SEGMENTS
    assert 0 <= metrics.deadlines_missed <= SEGMENTS
