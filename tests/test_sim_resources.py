"""Unit tests for counted and multi-dimensional resources."""

import pytest

from repro.sim import CapacityResource, InsufficientCapacity, MultiResource, Simulator


class TestCapacityResource:
    def test_acquire_release_roundtrip(self):
        sim = Simulator()
        res = CapacityResource(sim, capacity=4)
        event = res.acquire(3)
        sim.run()
        assert event.fired
        assert res.available == 1
        res.release(3)
        assert res.available == 4

    def test_waiters_are_fifo(self):
        sim = Simulator()
        res = CapacityResource(sim, capacity=2)
        res.acquire(2)
        order = []

        def claim(tag, amount):
            yield res.acquire(amount)
            order.append(tag)

        sim.process(claim("first", 1))
        sim.process(claim("second", 1))
        sim.call_in(1.0, lambda: res.release(2))
        sim.run()
        assert order == ["first", "second"]

    def test_fifo_blocks_head_of_line(self):
        # A big request at the head blocks a small one behind it (no
        # starvation of large requests).
        sim = Simulator()
        res = CapacityResource(sim, capacity=4)
        res.acquire(3)
        big = res.acquire(4)
        small = res.acquire(1)
        sim.run()
        assert not big.fired
        assert not small.fired

    def test_try_acquire(self):
        sim = Simulator()
        res = CapacityResource(sim, capacity=2)
        assert res.try_acquire(2)
        assert not res.try_acquire(1)
        res.release(2)
        assert res.try_acquire(1)

    def test_over_capacity_request_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, capacity=2)
        with pytest.raises(InsufficientCapacity):
            res.acquire(3)

    def test_over_release_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, capacity=2)
        with pytest.raises(ValueError):
            res.release(1)

    def test_utilization(self):
        sim = Simulator()
        res = CapacityResource(sim, capacity=4)
        res.acquire(1)
        sim.run()
        assert res.utilization == pytest.approx(0.25)


class TestMultiResource:
    def make(self):
        return MultiResource({"decode": 3000, "encode": 10000, "dram": 8 << 30})

    def test_acquire_all_dimensions(self):
        res = self.make()
        assert res.acquire({"decode": 500, "encode": 3750})
        assert res.available["decode"] == 2500
        assert res.available["encode"] == 6250

    def test_reject_when_any_dimension_short(self):
        res = self.make()
        assert res.acquire({"decode": 3000})
        # encode has room but decode is exhausted: whole request must fail.
        assert not res.acquire({"decode": 1, "encode": 1})
        assert res.available["encode"] == 10000

    def test_unknown_dimension_never_fits(self):
        res = self.make()
        assert not res.fits({"gpu": 1})
        assert not res.could_ever_fit({"gpu": 1})

    def test_zero_amounts_ignored(self):
        res = self.make()
        assert res.acquire({"decode": 0, "gpu": 0})
        assert res.is_idle()

    def test_release_restores(self):
        res = self.make()
        request = {"decode": 1000, "encode": 2000}
        res.acquire(request)
        res.release(request)
        assert res.is_idle()

    def test_over_release_rejected(self):
        res = self.make()
        with pytest.raises(ValueError):
            res.release({"decode": 1})

    def test_utilization_max_across_dimensions(self):
        res = self.make()
        res.acquire({"decode": 3000, "encode": 1000})
        assert res.utilization() == pytest.approx(1.0)
        assert res.utilization("encode") == pytest.approx(0.1)

    def test_could_ever_fit_ignores_current_use(self):
        res = self.make()
        res.acquire({"decode": 3000})
        assert res.could_ever_fit({"decode": 3000})
        assert not res.could_ever_fit({"decode": 3001})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MultiResource({"x": -1})

    def test_empty_capacities_rejected(self):
        with pytest.raises(ValueError):
            MultiResource({})
