"""Cache-layer tests: import closure, fingerprints, corruption recovery.

The fake repo trees built here exercise the content-addressing contract
end to end: a fingerprint moves iff something the experiment actually
depends on moved (its params, its seed, its schema, or a source file in
its transitive import closure) -- and a damaged cache entry is always a
recomputation, never a crash or a wrong answer.
"""

from __future__ import annotations

import json

import pytest

from repro.runner.cache import (
    CACHE_ENTRY_VERSION,
    ResultCache,
    canonical_json,
    import_closure,
    repo_root,
    resolve_module,
    source_hashes,
    unit_fingerprint,
)
from repro.runner.registry import Experiment, ResultSchema, UnitContext

SCHEMA = ResultSchema(version=1, fields=("v",))


def fake_tree(root):
    """src-layout tree: pkg/__init__ -> a -> b, plus an unrelated module."""
    pkg = root / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("from pkg import a\n")
    (pkg / "a.py").write_text("from pkg.b import helper\n\n\ndef run():\n    return helper()\n")
    (pkg / "b.py").write_text("def helper():\n    return 1\n")
    (root / "src" / "solo.py").write_text("import json\n\nVALUE = 2\n")
    return root


def make_experiment(sources=("pkg.a",), seed=7, schema=SCHEMA, name="exp"):
    return Experiment(
        name=name, title="t", fn=lambda ctx: {"v": 0}, grid=({"q": 1},),
        seed=seed, schema=schema, sources=tuple(sources),
    )


UNIT = UnitContext(experiment="exp", index=0, params={"q": 1}, seed=7)


class TestCanonicalJson:
    def test_sorted_keys_fixed_layout_trailing_newline(self):
        text = canonical_json({"b": 1, "a": [1, 2]})
        assert text == '{\n  "a": [\n    1,\n    2\n  ],\n  "b": 1\n}\n'

    def test_key_order_never_leaks(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


class TestImportClosure:
    def test_resolve_prefers_src_layout_and_handles_packages(self, tmp_path):
        fake_tree(tmp_path)
        assert resolve_module(tmp_path, "pkg") == tmp_path / "src/pkg/__init__.py"
        assert resolve_module(tmp_path, "pkg.a") == tmp_path / "src/pkg/a.py"
        assert resolve_module(tmp_path, "numpy") is None

    def test_closure_is_transitive_and_includes_package_init(self, tmp_path):
        fake_tree(tmp_path)
        files = import_closure(tmp_path, ("pkg.a",))
        names = [p.relative_to(tmp_path).as_posix() for p in files]
        # pkg.a imports pkg.b; importing pkg.a also runs pkg/__init__.
        assert names == ["src/pkg/__init__.py", "src/pkg/a.py", "src/pkg/b.py"]

    def test_external_imports_are_ignored(self, tmp_path):
        fake_tree(tmp_path)
        files = import_closure(tmp_path, ("solo",))
        assert [p.name for p in files] == ["solo.py"]

    def test_repo_root_points_at_this_checkout(self):
        assert (repo_root() / "src" / "repro" / "runner").is_dir()
        # The real registry module resolves inside this repo.
        assert resolve_module(repo_root(), "repro.runner.registry") is not None


class TestSourceHashes:
    def test_keys_are_repo_relative_posix_paths(self, tmp_path):
        fake_tree(tmp_path)
        hashes = source_hashes(tmp_path, ("pkg.a",))
        assert sorted(hashes) == [
            "src/pkg/__init__.py", "src/pkg/a.py", "src/pkg/b.py",
        ]
        assert all(len(digest) == 64 for digest in hashes.values())

    def test_editing_a_file_moves_only_its_hash(self, tmp_path):
        fake_tree(tmp_path)
        before = source_hashes(tmp_path, ("pkg.a",))
        (tmp_path / "src/pkg/b.py").write_text("def helper():\n    return 99\n")
        after = source_hashes(tmp_path, ("pkg.a",))
        assert before["src/pkg/a.py"] == after["src/pkg/a.py"]
        assert before["src/pkg/b.py"] != after["src/pkg/b.py"]


class TestUnitFingerprint:
    def test_stable_across_calls(self, tmp_path):
        fake_tree(tmp_path)
        hashes = source_hashes(tmp_path, ("pkg.a",))
        exp = make_experiment()
        assert unit_fingerprint(exp, UNIT, hashes) == unit_fingerprint(exp, UNIT, hashes)

    def test_moves_with_every_input_it_claims(self, tmp_path):
        fake_tree(tmp_path)
        hashes = source_hashes(tmp_path, ("pkg.a",))
        exp = make_experiment()
        base = unit_fingerprint(exp, UNIT, hashes)

        assert unit_fingerprint(make_experiment(seed=8), UNIT, hashes) != base
        bumped = ResultSchema(version=2, fields=SCHEMA.fields)
        assert unit_fingerprint(make_experiment(schema=bumped), UNIT, hashes) != base
        other_unit = UnitContext(experiment="exp", index=0, params={"q": 2}, seed=7)
        assert unit_fingerprint(exp, other_unit, hashes) != base

        (tmp_path / "src/pkg/b.py").write_text("def helper():\n    return 99\n")
        edited = source_hashes(tmp_path, ("pkg.a",))
        assert unit_fingerprint(exp, UNIT, edited) != base

    def test_untouched_dependency_set_keeps_fingerprint(self, tmp_path):
        fake_tree(tmp_path)
        exp = make_experiment()
        base = unit_fingerprint(exp, UNIT, source_hashes(tmp_path, ("pkg.a",)))
        # Editing a module outside the closure changes nothing.
        (tmp_path / "src/solo.py").write_text("VALUE = 3\n")
        assert unit_fingerprint(exp, UNIT, source_hashes(tmp_path, ("pkg.a",))) == base


class TestResultCache:
    FP = "f" * 64

    def test_miss_put_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("exp", self.FP) is None
        cache.put("exp", self.FP, UNIT, {"v": 42})
        assert cache.get("exp", self.FP) == {"v": 42}
        assert (cache.hits, cache.misses, cache.errors) == (1, 1, 0)

    def test_entry_layout_is_content_addressed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("exp", self.FP, UNIT, {"v": 1})
        path = tmp_path / "exp" / f"{self.FP}.json"
        payload = json.loads(path.read_text())
        assert payload["entry_version"] == CACHE_ENTRY_VERSION
        assert payload["fingerprint"] == self.FP
        assert payload["unit_index"] == 0
        assert not list(tmp_path.rglob("*.tmp"))  # atomic replace, no debris

    @pytest.mark.parametrize("damage", [
        "not json at all",
        '"a bare string"\n',
        '{"entry_version": 999, "fingerprint": "%s", "result": {}}' % ("f" * 64),
        '{"entry_version": 1, "fingerprint": "wrong", "result": {}}',
        '{"entry_version": 1, "fingerprint": "%s", "result": [1]}' % ("f" * 64),
        "",
    ])
    def test_damaged_entries_are_counted_misses(self, tmp_path, damage):
        cache = ResultCache(tmp_path)
        cache.put("exp", self.FP, UNIT, {"v": 1})
        (tmp_path / "exp" / f"{self.FP}.json").write_text(damage)
        assert cache.get("exp", self.FP) is None
        assert cache.errors == 1 and cache.misses == 1 and cache.hits == 0

    def test_rewrite_after_damage_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("exp", self.FP, UNIT, {"v": 1})
        (tmp_path / "exp" / f"{self.FP}.json").write_text("garbage")
        assert cache.get("exp", self.FP) is None
        cache.put("exp", self.FP, UNIT, {"v": 1})
        assert cache.get("exp", self.FP) == {"v": 1}
