"""Tests for site runtimes and deterministic failover routing."""

import pytest

from repro.cluster.regions import ClusterSite
from repro.control.failover import FailoverRouter, SiteRuntime
from repro.control.jobs import Job, JobRequest, SloClass


def make_sites():
    return [
        SiteRuntime(site=ClusterSite("west", "us", (0.0, 0.0), capacity=2)),
        SiteRuntime(site=ClusterSite("east", "us", (10.0, 0.0), capacity=2)),
        SiteRuntime(site=ClusterSite("eu", "eu", (50.0, 0.0), capacity=2)),
    ]


def make_job(job_id="j1"):
    return Job(JobRequest(
        job_id=job_id, slo_class=SloClass.UPLOAD, origin=(0.0, 0.0),
        arrival_time=0.0, service_seconds=10.0,
    ))


class TestSiteRuntime:
    def test_defaults_derive_from_capacity(self):
        runtime = SiteRuntime(site=ClusterSite("x", "us", (0, 0), capacity=8))
        assert runtime.slots == 8
        assert runtime.max_slots == 32
        assert runtime.headroom() == 8
        assert runtime.load() == 0.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            SiteRuntime(
                site=ClusterSite("x", "us", (0, 0), capacity=4),
                slots=4, min_slots=1, max_slots=2,
            )

    def test_outstanding_counts_queue_and_running(self):
        runtime = SiteRuntime(site=ClusterSite("x", "us", (0, 0), capacity=4))
        runtime.queue.push(make_job("q1"))
        runtime.running["r1"] = make_job("r1")
        assert runtime.outstanding() == 2
        assert runtime.load() == pytest.approx(0.5)


class TestRouting:
    def test_prefers_nearest_with_headroom(self):
        router = FailoverRouter(make_sites())
        chosen = router.choose((1.0, 0.0))
        assert chosen.name == "west"
        assert router.spill_routed == router.failover_routed == 0

    def test_spill_counted_when_nearest_full(self):
        router = FailoverRouter(make_sites())
        west = router.site("west")
        west.running["a"] = make_job("a")
        west.running["b"] = make_job("b")
        chosen = router.choose((1.0, 0.0))
        assert chosen.name == "east"
        assert router.spill_routed == 1
        assert router.failover_routed == 0

    def test_failover_counted_when_nearest_down(self):
        router = FailoverRouter(make_sites())
        router.mark_down("west")
        chosen = router.choose((1.0, 0.0))
        assert chosen.name == "east"
        assert router.failover_routed == 1
        assert router.spill_routed == 0

    def test_saturated_fleet_routes_least_loaded(self):
        router = FailoverRouter(make_sites())
        for site in router.sites:
            for i in range(site.slots):
                site.running[f"{site.name}{i}"] = make_job(f"{site.name}{i}")
        router.site("eu").queue.push(make_job("backlog"))
        # Everyone is full; west and east tie on load, west is nearer.
        assert router.choose((1.0, 0.0)).name == "west"

    def test_none_when_every_site_down(self):
        router = FailoverRouter(make_sites())
        for name in ("west", "east", "eu"):
            router.mark_down(name)
        assert router.choose((0.0, 0.0)) is None
        assert router.total_capacity() == 0

    def test_total_capacity_excludes_down_sites(self):
        router = FailoverRouter(make_sites())
        assert router.total_capacity() == 6
        router.mark_down("eu")
        assert router.total_capacity() == 4
        router.mark_up("eu")
        assert router.total_capacity() == 6

    def test_unknown_site_raises_with_known_names(self):
        router = FailoverRouter(make_sites())
        with pytest.raises(KeyError, match="east"):
            router.site("mars")

    def test_duplicate_names_rejected(self):
        sites = make_sites()
        sites[1] = SiteRuntime(
            site=ClusterSite("west", "us", (1.0, 0.0), capacity=2)
        )
        with pytest.raises(ValueError):
            FailoverRouter(sites)


class TestOutageDrain:
    def test_mark_down_detaches_queued_and_running(self):
        router = FailoverRouter(make_sites())
        west = router.site("west")
        running = make_job("r1")
        west.running["r1"] = running
        west.queue.push(make_job("q1"))
        west.queue.push(make_job("q2"))
        queued, in_flight = router.mark_down("west")
        assert [j.job_id for j in queued] == ["q1", "q2"]
        assert [j.job_id for j in in_flight] == ["r1"]
        assert not west.up
        assert len(west.queue) == 0 and not west.running

    def test_recovered_site_accepts_again(self):
        router = FailoverRouter(make_sites())
        router.mark_down("west")
        router.mark_up("west")
        assert router.choose((1.0, 0.0)).name == "west"
