"""Tests for the pool autoscaler."""

import pytest

from repro.cluster.autoscale import AutoscaleConfig, Autoscaler
from repro.cluster.pool import Pool, PoolKey, Priority, UseCase
from repro.cluster.worker import VcuWorker
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC


def make_pools(upload_workers=4, live_workers=1):
    upload = Pool(PoolKey(Priority.NORMAL, UseCase.UPLOAD))
    live = Pool(PoolKey(Priority.CRITICAL, UseCase.LIVE))
    upload.workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"as-u{i}")) for i in range(upload_workers)
    ]
    live.workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"as-l{i}")) for i in range(live_workers)
    ]
    return {upload.key: upload, live.key: live}, upload, live


class TestAutoscaler:
    def test_moves_worker_toward_pressure(self):
        pools, upload, live = make_pools()
        live.pending_steps = 20
        scaler = Autoscaler(pools)
        actions = scaler.step()
        assert actions
        assert actions[0].to_pool == live.key
        assert len(live.workers) == 2
        assert len(upload.workers) == 3

    def test_conserves_total_workers(self):
        pools, upload, live = make_pools()
        live.pending_steps = 50
        scaler = Autoscaler(pools)
        before = scaler.total_workers()
        for _ in range(5):
            scaler.step()
        assert scaler.total_workers() == before

    def test_no_action_inside_hysteresis_band(self):
        pools, upload, live = make_pools()
        live.pending_steps = 2  # pressure 2.0 < scale_up 4.0
        assert Autoscaler(pools).step() == []

    def test_min_workers_respected(self):
        pools, upload, live = make_pools(upload_workers=1)
        live.pending_steps = 100
        scaler = Autoscaler(pools, AutoscaleConfig(min_workers=1))
        for _ in range(5):
            scaler.step()
        assert len(upload.workers) == 1  # never drained below the floor

    def test_busy_donor_not_drained(self):
        pools, upload, live = make_pools()
        upload.pending_steps = 3  # pressure 0.75 > scale_down 0.5
        live.pending_steps = 20
        assert Autoscaler(pools).step() == []

    def test_worker_pool_key_updated(self):
        pools, upload, live = make_pools()
        live.pending_steps = 20
        Autoscaler(pools).step()
        moved = live.workers[-1]
        assert moved.pool_key == live.key

    def test_requires_pools(self):
        with pytest.raises(ValueError):
            Autoscaler({})
