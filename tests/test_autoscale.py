"""Tests for the pool autoscaler and the site-capacity autoscaler."""

import pytest

from repro.cluster.autoscale import (
    AutoscaleConfig,
    Autoscaler,
    CapacityAutoscaleConfig,
    CapacityAutoscaler,
)
from repro.cluster.pool import Pool, PoolKey, Priority, UseCase
from repro.cluster.worker import VcuWorker
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC


def make_pools(upload_workers=4, live_workers=1):
    upload = Pool(PoolKey(Priority.NORMAL, UseCase.UPLOAD))
    live = Pool(PoolKey(Priority.CRITICAL, UseCase.LIVE))
    upload.workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"as-u{i}")) for i in range(upload_workers)
    ]
    live.workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"as-l{i}")) for i in range(live_workers)
    ]
    return {upload.key: upload, live.key: live}, upload, live


class TestAutoscaler:
    def test_moves_worker_toward_pressure(self):
        pools, upload, live = make_pools()
        live.pending_steps = 20
        scaler = Autoscaler(pools)
        actions = scaler.step()
        assert actions
        assert actions[0].to_pool == live.key
        assert len(live.workers) == 2
        assert len(upload.workers) == 3

    def test_conserves_total_workers(self):
        pools, upload, live = make_pools()
        live.pending_steps = 50
        scaler = Autoscaler(pools)
        before = scaler.total_workers()
        for _ in range(5):
            scaler.step()
        assert scaler.total_workers() == before

    def test_no_action_inside_hysteresis_band(self):
        pools, upload, live = make_pools()
        live.pending_steps = 2  # pressure 2.0 < scale_up 4.0
        assert Autoscaler(pools).step() == []

    def test_min_workers_respected(self):
        pools, upload, live = make_pools(upload_workers=1)
        live.pending_steps = 100
        scaler = Autoscaler(pools, AutoscaleConfig(min_workers=1))
        for _ in range(5):
            scaler.step()
        assert len(upload.workers) == 1  # never drained below the floor

    def test_busy_donor_not_drained(self):
        pools, upload, live = make_pools()
        upload.pending_steps = 3  # pressure 0.75 > scale_down 0.5
        live.pending_steps = 20
        assert Autoscaler(pools).step() == []

    def test_worker_pool_key_updated(self):
        pools, upload, live = make_pools()
        live.pending_steps = 20
        Autoscaler(pools).step()
        moved = live.workers[-1]
        assert moved.pool_key == live.key

    def test_requires_pools(self):
        with pytest.raises(ValueError):
            Autoscaler({})


class TestCapacityAutoscaler:
    def evaluate(self, scaler, waiting, running, slots, at=0.0):
        return scaler.evaluate(
            "site", waiting=waiting, running=running, slots=slots,
            min_slots=2, max_slots=16, at=at,
        )

    def test_scales_up_under_backlog(self):
        scaler = CapacityAutoscaler(CapacityAutoscaleConfig(step_slots=4))
        assert self.evaluate(scaler, waiting=20, running=4, slots=4) == 8
        assert scaler.actions == 1
        action = scaler.history[0]
        assert (action.old_slots, action.new_slots) == (4, 8)

    def test_scale_up_clamped_to_max(self):
        scaler = CapacityAutoscaler(CapacityAutoscaleConfig(step_slots=8))
        assert self.evaluate(scaler, waiting=100, running=12, slots=12) == 16

    def test_busy_fleet_without_backlog_holds(self):
        # A fleet keeping up has near-zero waiting but busy slots;
        # occupancy-based scale-down must not shrink it into overload.
        scaler = CapacityAutoscaler()
        assert self.evaluate(scaler, waiting=0, running=8, slots=8) == 8
        assert scaler.actions == 0

    def test_idle_fleet_scales_down(self):
        scaler = CapacityAutoscaler(CapacityAutoscaleConfig(step_slots=4))
        assert self.evaluate(scaler, waiting=0, running=1, slots=12) == 8

    def test_scale_down_floors_at_running_and_min(self):
        scaler = CapacityAutoscaler(CapacityAutoscaleConfig(step_slots=16))
        # Slots in use cannot be reclaimed mid-job: floor at running=3.
        assert self.evaluate(scaler, waiting=0, running=3, slots=16) == 3
        # With nothing running, the floor is min_slots.
        assert self.evaluate(scaler, waiting=0, running=0, slots=8) == 2

    def test_inside_band_is_a_no_op(self):
        scaler = CapacityAutoscaler()
        assert self.evaluate(scaler, waiting=4, running=4, slots=4) == 4
        assert scaler.history == []

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            self.evaluate(CapacityAutoscaler(), waiting=0, running=0, slots=0)

    def test_hysteresis_band_validated(self):
        with pytest.raises(ValueError):
            CapacityAutoscaleConfig(
                scale_up_pressure=1.0, scale_down_pressure=1.0
            )
        with pytest.raises(ValueError):
            CapacityAutoscaleConfig(step_slots=0)
