"""Tests for the NoC arbitration / memory-level-parallelism model."""

import pytest

from repro.vcu.noc import ArbitrationResult, Requester, arbitrate, vcu_requesters
from repro.vcu.spec import DEFAULT_VCU_SPEC


class TestMlp:
    def test_littles_law(self):
        requester = Requester("enc", outstanding_requests=32, request_bytes=64)
        limit = requester.mlp_bandwidth_limit(latency_seconds=150e-9)
        assert limit == pytest.approx(32 * 64 / 150e-9)

    def test_single_outstanding_request_starves(self):
        # Section 3.2: without dozens of in-flight operations a core
        # cannot come close to its ~2.15 GB/s realtime encode demand.
        demand = 2.15e9
        latency = 150e-9
        shallow = Requester("enc", outstanding_requests=1, demand=demand)
        deep = Requester("enc", outstanding_requests=32, demand=demand)
        assert shallow.mlp_bandwidth_limit(latency) < 0.25 * demand
        assert deep.mlp_bandwidth_limit(latency) > demand

    def test_validation(self):
        with pytest.raises(ValueError):
            Requester("x", outstanding_requests=0)
        with pytest.raises(ValueError):
            Requester("x", outstanding_requests=1, weight=0)
        with pytest.raises(ValueError):
            Requester("x", outstanding_requests=1).mlp_bandwidth_limit(0)


class TestArbitration:
    def test_deep_prefetch_saturates_controller(self):
        result = arbitrate(vcu_requesters(), DEFAULT_VCU_SPEC.effective_dram_bandwidth)
        assert result.utilization > 0.95

    def test_shallow_prefetch_strands_bandwidth(self):
        requesters = vcu_requesters(encoder_outstanding=1, decoder_outstanding=1)
        result = arbitrate(requesters, DEFAULT_VCU_SPEC.effective_dram_bandwidth)
        assert result.utilization < 0.25

    def test_demand_caps_respected(self):
        requesters = [Requester("a", 64, demand=1e9), Requester("b", 64, demand=1e9)]
        result = arbitrate(requesters, peak_bandwidth=10e9)
        assert result.grants["a"] == pytest.approx(1e9)
        assert result.grants["b"] == pytest.approx(1e9)

    def test_no_requester_starved(self):
        # A greedy unbounded client shares fairly with a small one.
        requesters = [
            Requester("greedy", 64, weight=1.0),
            Requester("small", 64, demand=0.5e9, weight=1.0),
        ]
        result = arbitrate(requesters, peak_bandwidth=4e9)
        assert result.grants["small"] == pytest.approx(0.5e9)
        assert result.grants["greedy"] == pytest.approx(3.5e9)

    def test_weights_bias_shares(self):
        requesters = [
            Requester("heavy", 64, weight=3.0),
            Requester("light", 64, weight=1.0),
        ]
        result = arbitrate(requesters, peak_bandwidth=4e9)
        assert result.grants["heavy"] == pytest.approx(3 * result.grants["light"], rel=0.01)

    def test_never_exceeds_peak(self):
        result = arbitrate(vcu_requesters(), peak_bandwidth=10e9)
        assert result.total_granted <= 10e9 * (1 + 1e-9)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            arbitrate([Requester("a", 1), Requester("a", 1)], 1e9)

    def test_bad_peak_rejected(self):
        with pytest.raises(ValueError):
            arbitrate([Requester("a", 1)], 0)

    def test_vcu_requesters_shape(self):
        requesters = vcu_requesters()
        names = [r.name for r in requesters]
        assert sum(1 for n in names if n.startswith("enc")) == 10
        assert sum(1 for n in names if n.startswith("dec")) == 3
        assert "dma" in names
