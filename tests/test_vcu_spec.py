"""Tests tying the VCU spec to the paper's stated speeds & feeds."""

import pytest

from repro.vcu.spec import (
    DEFAULT_HOST_SPEC,
    DEFAULT_VCU_SPEC,
    GiB,
    MODE_COST_FACTOR,
    EncodingMode,
    HostSpec,
    VcuSpec,
)
from repro.video.frame import resolution


class TestVcuSpec:
    def test_core_counts(self):
        assert DEFAULT_VCU_SPEC.encoder_cores == 10
        assert DEFAULT_VCU_SPEC.decoder_cores == 3

    def test_encoder_core_sustains_2160p60(self):
        # Section 3.3.1: each encoder core encodes 2160p in realtime up to
        # 60 FPS with three reference frames.
        res = resolution("2160p")
        for codec in ("h264", "vp9"):
            rate = DEFAULT_VCU_SPEC.encode_rate(codec, EncodingMode.LOW_LATENCY_ONE_PASS)
            fps = rate / res.pixels
            assert fps >= 60.0

    def test_dram_bandwidth_is_lpddr4_3200_x4(self):
        # Four 32-bit LPDDR4-3200 channels ~= 36 GiB/s raw.
        assert DEFAULT_VCU_SPEC.dram_raw_bandwidth == pytest.approx(36 * GiB)

    def test_vcu_bandwidth_demand_in_paper_band(self):
        # Section 3.3.1: the VCU needs ~27-37 GiB/s of DRAM bandwidth
        # (10 realtime encodes worst-case + active decoders).
        spec = DEFAULT_VCU_SPEC
        encode_rate = spec.total_encode_rate_realtime
        worst = encode_rate * spec.encode_bytes_per_pixel_worst
        typical = encode_rate * spec.encode_bytes_per_pixel_typical
        decoders = spec.decoder_cores * spec.decoder_bandwidth
        assert 25 * GiB <= typical + decoders <= 37 * GiB
        assert worst + decoders == pytest.approx(36 * GiB, rel=0.15)

    def test_reference_compression_halves_read_bandwidth(self):
        spec = DEFAULT_VCU_SPEC
        assert spec.encode_bytes_per_pixel_typical < 0.7 * spec.encode_bytes_per_pixel_raw

    def test_scheduler_dimensions(self):
        assert DEFAULT_VCU_SPEC.millidecode == 3000
        assert DEFAULT_VCU_SPEC.milliencode == 10000

    def test_mode_cost_ordering(self):
        # Realtime modes are cheapest; offline two-pass is by far the
        # most expensive (deepest search, two passes).
        assert MODE_COST_FACTOR[EncodingMode.LOW_LATENCY_ONE_PASS] == 1.0
        assert MODE_COST_FACTOR[EncodingMode.OFFLINE_TWO_PASS] > MODE_COST_FACTOR[
            EncodingMode.LAGGED_TWO_PASS
        ]

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_VCU_SPEC.encode_rate("av1", EncodingMode.LOW_LATENCY_ONE_PASS)


class TestHostSpec:
    def test_20_vcus_per_host(self):
        # 2 trays x 5 cards x 2 ASICs (Section 3.3.1).
        assert DEFAULT_HOST_SPEC.vcus_per_host == 20

    def test_nic_is_100gbps(self):
        assert DEFAULT_HOST_SPEC.network_bandwidth_bits == pytest.approx(100e9)

    def test_numa_penalty_in_paper_band(self):
        # NUMA-aware scheduling gained 16-25% (Section 4.3).
        assert 1.16 <= DEFAULT_HOST_SPEC.numa_penalty <= 1.25
