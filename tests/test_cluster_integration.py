"""Integration tests: step graphs executing on the simulated cluster."""

import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.transcode.ladder import LadderPolicy
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.video.frame import resolution


def make_cluster(sim, vcus=2, cpus=1, **kwargs):
    vcu_workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"c{id(sim)%997}-vcu{i}"))
        for i in range(vcus)
    ]
    cpu_workers = [CpuWorker(cores=16, name=None) for _ in range(cpus)]
    return TranscodeCluster(sim, vcu_workers, cpu_workers, **kwargs)


def upload_graph(video_id="v1", frames=300, source="720p"):
    return build_transcode_graph(
        video_id=video_id, source=resolution(source), total_frames=frames,
        fps=30.0, bucket=PopularityBucket.WARM,
    )


class TestEndToEnd:
    def test_graph_completes(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        graph = upload_graph()
        cluster.submit(graph)
        sim.run()
        assert graph.completed_at is not None
        assert cluster.stats.completed_graphs == 1
        assert cluster.pending_count == 0

    def test_all_resources_released(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        cluster.submit(upload_graph())
        sim.run()
        for worker in cluster.vcu_workers:
            assert worker.vcu.resources.is_idle()
        for worker in cluster.cpu_workers:
            assert worker.resources.is_idle()

    def test_throughput_recorded(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        graph = upload_graph()
        cluster.submit(graph)
        sim.run()
        assert cluster.stats.throughput.total_megapixels == pytest.approx(
            graph.output_megapixels()
        )

    def test_assembly_runs_after_transcodes(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        graph = upload_graph()
        cluster.submit(graph)
        sim.run()
        # Graph latency must be >= the longest transcode; assembly gated.
        assert graph.completed_at > graph.submitted_at

    def test_multiple_graphs_share_cluster(self):
        sim = Simulator()
        cluster = make_cluster(sim, vcus=3)
        graphs = [upload_graph(f"v{i}") for i in range(4)]
        for graph in graphs:
            cluster.submit(graph)
        sim.run()
        assert cluster.stats.completed_graphs == 4
        assert all(g.completed_at is not None for g in graphs)

    def test_processed_by_records_vcu(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        graph = upload_graph()
        cluster.submit(graph)
        sim.run()
        for step in graph.transcode_steps():
            assert step.processed_by is not None
            assert step.processed_by.endswith(tuple("0123456789"))


class TestQueueing:
    def test_work_queues_when_cluster_full(self):
        sim = Simulator()
        cluster = make_cluster(sim, vcus=1)
        for i in range(6):
            cluster.submit(upload_graph(f"v{i}", frames=600, source="1080p"))
        # Before running, some steps must be pending (one VCU can't hold
        # all of them at once).
        assert cluster.pending_count > 0
        sim.run()
        assert cluster.stats.completed_graphs == 6
        assert cluster.pending_count == 0

    def test_more_vcus_finish_sooner(self):
        def run_with(vcus):
            sim = Simulator()
            cluster = make_cluster(sim, vcus=vcus)
            for i in range(6):
                cluster.submit(upload_graph(f"v{i}", frames=600, source="1080p"))
            return sim.run()

        assert run_with(4) < run_with(1)


class TestSoftwareFallback:
    def test_software_only_steps_use_cpu(self):
        sim = Simulator()
        cluster = make_cluster(sim, vcus=1, cpus=1)
        graph = upload_graph(frames=150, source="480p")
        for step in graph.steps:
            step.software_only = True
        cluster.submit(graph)
        sim.run()
        assert graph.completed_at is not None
        assert cluster.stats.software_fallbacks == len(graph.transcode_steps())
        for step in graph.transcode_steps():
            assert step.processed_by.startswith("worker-") or "cpu" in step.processed_by

    def test_software_path_much_slower(self):
        def run(software_only):
            sim = Simulator()
            cluster = make_cluster(sim, vcus=1, cpus=1)
            graph = upload_graph(frames=150, source="480p")
            if software_only:
                for step in graph.steps:
                    step.software_only = True
            cluster.submit(graph)
            sim.run()
            return graph.completed_at

        assert run(True) > 3.0 * run(False)


class TestValidation:
    def test_bad_integrity_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_cluster(sim, integrity_check_rate=1.5)
