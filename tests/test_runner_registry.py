"""Registry-layer tests: schema contract, seed derivation, selection.

The seed-derivation rule is the runner's determinism keystone: a unit's
RNG depends only on (experiment seed, experiment name, grid index), so
the same unit produces the same stream no matter which worker, shard, or
job count executes it.
"""

from __future__ import annotations

import pytest

from repro.runner.registry import (
    Experiment,
    ExperimentRegistry,
    ResultSchema,
    UnitContext,
)
from repro.sim.rng import split_rng

SCHEMA = ResultSchema(version=1, fields=("x", "y"))


def unit_fn(ctx):
    return {"x": ctx.params["x"], "y": float(ctx.rng.random())}


def make_experiment(**overrides):
    kwargs = dict(
        name="toy",
        title="Toy experiment",
        fn=unit_fn,
        grid=({"x": 0}, {"x": 1}, {"x": 2}),
        seed=11,
        schema=SCHEMA,
    )
    kwargs.update(overrides)
    return Experiment(**kwargs)


class TestResultSchema:
    def test_accepts_exact_field_set(self):
        SCHEMA.validate("toy", {"x": 1, "y": 2.0})

    def test_rejects_missing_and_extra_fields(self):
        with pytest.raises(ValueError, match="missing: y"):
            SCHEMA.validate("toy", {"x": 1})
        with pytest.raises(ValueError, match="unexpected: z"):
            SCHEMA.validate("toy", {"x": 1, "y": 2.0, "z": 3})

    def test_error_names_the_experiment_and_version(self):
        with pytest.raises(ValueError, match=r"toy: .*schema v1"):
            SCHEMA.validate("toy", {})


class TestSeedDerivation:
    def test_rng_keyed_on_name_and_index_only(self):
        unit = UnitContext(experiment="toy", index=2, params={}, seed=11)
        expected = split_rng(11, "toy/unit2")
        assert unit.rng.random() == expected.random()

    def test_same_identity_same_stream(self):
        a = UnitContext(experiment="toy", index=0, params={"x": 0}, seed=11)
        b = UnitContext(experiment="toy", index=0, params={"anything": 9}, seed=11)
        # Params are inputs to the unit fn, not to the stream.
        assert a.rng.random() == b.rng.random()

    def test_distinct_units_get_distinct_streams(self):
        draws = [
            UnitContext(experiment="toy", index=i, params={}, seed=11).rng.random()
            for i in range(4)
        ]
        assert len(set(draws)) == len(draws)

    def test_experiment_name_separates_streams(self):
        a = UnitContext(experiment="toy", index=0, params={}, seed=11)
        b = UnitContext(experiment="other", index=0, params={}, seed=11)
        assert a.rng.random() != b.rng.random()


class TestExperiment:
    def test_requires_name_and_nonempty_grid(self):
        with pytest.raises(ValueError, match="needs a name"):
            make_experiment(name="")
        with pytest.raises(ValueError, match="grid is empty"):
            make_experiment(grid=())

    def test_sources_default_to_fn_module(self):
        assert make_experiment().sources == (unit_fn.__module__,)
        explicit = make_experiment(sources=("repro.balance",))
        assert explicit.sources == ("repro.balance",)

    def test_units_are_ordered_and_indexed(self):
        units = make_experiment().units()
        assert [u.index for u in units] == [0, 1, 2]
        assert [u.params["x"] for u in units] == [0, 1, 2]
        assert all(u.experiment == "toy" and u.seed == 11 for u in units)

    def test_smoke_grid_applies_only_when_asked(self):
        exp = make_experiment(smoke_grid=({"x": 0},))
        assert len(exp.units()) == 3
        assert len(exp.units(smoke=True)) == 1
        # Without a smoke grid, smoke runs fall back to the full grid.
        assert len(make_experiment().units(smoke=True)) == 3

    def test_run_unit_validates_result(self):
        exp = make_experiment(fn=lambda ctx: {"x": 1})
        with pytest.raises(ValueError, match="missing: y"):
            exp.run_unit(exp.units()[0])

    def test_summary_defaults_to_result_copies(self):
        exp = make_experiment()
        results = [{"x": 0, "y": 1.0}]
        rows = exp.summary_rows(results)
        assert rows == results
        assert rows[0] is not results[0]

    def test_summarize_hook_wins(self):
        exp = make_experiment(summarize=lambda rs: [{"n": len(rs)}])
        assert exp.summary_rows([{}, {}]) == [{"n": 2}]


class TestRegistry:
    def test_add_get_select_roundtrip(self):
        registry = ExperimentRegistry()
        exp = registry.add(make_experiment())
        assert "toy" in registry
        assert len(registry) == 1
        assert registry.get("toy") is exp
        assert registry.select() == [exp]
        assert registry.select(["toy"]) == [exp]

    def test_duplicate_names_rejected(self):
        registry = ExperimentRegistry()
        registry.add(make_experiment())
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(make_experiment())

    def test_unknown_name_error_lists_known(self):
        registry = ExperimentRegistry()
        registry.add(make_experiment())
        with pytest.raises(KeyError, match="registered: toy"):
            registry.get("nope")

    def test_names_and_default_selection_are_sorted(self):
        registry = ExperimentRegistry()
        registry.add(make_experiment(name="zeta"))
        registry.add(make_experiment(name="alpha"))
        assert registry.names() == ["alpha", "zeta"]
        assert [e.name for e in registry.select()] == ["alpha", "zeta"]

    def test_decorator_registers_and_returns_fn(self):
        registry = ExperimentRegistry()

        @registry.experiment(
            name="dec", title="Decorated", grid=[{"x": 1}], seed=3, schema=SCHEMA
        )
        def decorated(ctx):
            return {"x": ctx.params["x"], "y": 0.0}

        assert registry.get("dec").fn is decorated
        assert decorated(registry.get("dec").units()[0]) == {"x": 1, "y": 0.0}
        assert registry.get("dec").grid == ({"x": 1},)
