"""The live-ladder experiment as registered in the default registry.

Locks the contract the CI ladder-smoke job relies on: the experiment
exists with both arms (healthy and regional-outage), its smoke manifest
is byte-identical at any ``--jobs`` (the driver-level determinism
guarantee), and every run's scorecard carries the exact key set from
:func:`repro.control.live_ladder.scorecard_keys`.
"""

from __future__ import annotations

import pytest

from repro.control.live_ladder import scorecard_keys
from repro.runner.executor import run_experiments
from repro.runner.manifest import build_manifest, manifest_text
from repro.runner import default_registry

NAME = "live-ladder"


class TestRegistration:
    def test_registered_with_both_arms(self):
        experiment = default_registry().get(NAME)
        outages = [params["outage"] for params in experiment.grid]
        assert sorted(outages) == [False, True]
        assert len(experiment.smoke_grid) == 2
        assert experiment.schema.fields == ("outage", "scorecard")

    def test_smoke_arm_is_shorter(self):
        experiment = default_registry().get(NAME)
        full = {p["horizon_seconds"] for p in experiment.grid}
        smoke = {p["horizon_seconds"] for p in experiment.smoke_grid}
        assert max(smoke) < min(full)

    def test_fault_pressure_is_on_in_every_arm(self):
        experiment = default_registry().get(NAME)
        for params in experiment.grid + experiment.smoke_grid:
            assert params["hang_rate"] > 0
            assert params["corruption_rate"] > 0


class TestSmokeRun:
    @pytest.fixture(scope="class")
    def smoke_runs(self):
        result = run_experiments(
            default_registry(), names=[NAME], smoke=True, jobs=1
        )
        return result.runs

    def test_scorecard_keys_are_exact(self, smoke_runs):
        assert len(smoke_runs) == 1 and len(smoke_runs[0].results) == 2
        for result in smoke_runs[0].results:
            card = result["scorecard"]
            assert tuple(sorted(card)) == scorecard_keys()
            assert card["conservation.ok"] is True

    def test_no_segment_is_lost_in_either_arm(self, smoke_runs):
        for result in smoke_runs[0].results:
            card = result["scorecard"]
            assert card["segments.lost"] == 0
            assert card["segments.released"] == card["segments.manifested"]
            assert card["streams.completed"] == card["streams.started"]

    def test_latency_percentiles_are_finite_and_ordered(self, smoke_runs):
        for result in smoke_runs[0].results:
            card = result["scorecard"]
            assert 0.0 < card["ttfs.p50"] <= card["ttfs.p90"] <= card["ttfs.p99"]
            assert 0.0 <= card["stall.p50"] <= card["stall.p99"]
            assert 0.0 <= card["deadline.miss_rate"] <= 1.0

    def test_outage_arm_degrades_latency_not_conservation(self, smoke_runs):
        by_outage = {
            result["outage"]: result["scorecard"]
            for run in smoke_runs for result in run.results
        }
        outage, control = by_outage[True], by_outage[False]
        # The outage hangs a region's VCUs: recovery work shows up as
        # extra retries, never as lost segments or broken ledgers.
        assert outage["cluster.hangs"] > control["cluster.hangs"]
        assert outage["cluster.retries"] > control["cluster.retries"]
        assert outage["segments.lost"] == control["segments.lost"] == 0
        assert outage["conservation.ok"] and control["conservation.ok"]

    def test_manifest_byte_identical_across_jobs(self, smoke_runs):
        serial = manifest_text(build_manifest(smoke_runs))
        sharded = run_experiments(
            default_registry(), names=[NAME], smoke=True, jobs=2
        )
        assert manifest_text(build_manifest(sharded.runs)) == serial
