"""Fleet-mode hot paths: batch placement and O(1) availability.

PR8's cluster-layer amortizations trade per-placement scans for cached
and incrementally maintained state.  These tests pin the equivalence
claims down:

* :meth:`BinPackingScheduler.place_batch` (and the :meth:`batch` context
  generally) returns exactly the workers the unbatched sequential path
  would, across generated request streams with interleaved releases.
* A ``fleet_mode`` cluster's incremental availability count/mask agrees
  with the ground-truth fleet scan at every observation point, through
  quarantines, rehabilitation, sweep disables, host drains and repairs.
* ``telemetry_mode="sampled"`` buffers observations but delivers the
  *same* final graph-latency histogram as the exact path (bucket
  increments commute), while actually flushing at sample boundaries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.cluster.scheduler import BinPackingScheduler
from repro.failures import FailureManager, FailureSweeper, FaultInjector
from repro.sim.engine import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.video.frame import resolution

SHAPES = [
    {"millidecode": 250.0, "milliencode": 1200.0, "dram_bytes": 40e6},
    {"millidecode": 500.0, "milliencode": 3750.0, "dram_bytes": 160e6},
    {"millidecode": 120.0, "milliencode": 600.0, "dram_bytes": 20e6},
    {"millidecode": 1000.0, "milliencode": 7500.0, "dram_bytes": 330e6},
]


def _make_scheduler(n=12):
    workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"fm{n}-{i}")) for i in range(n)
    ]
    return BinPackingScheduler(workers)


class TestBatchPlacementEquivalence:
    @settings(deadline=None)
    @given(rounds=st.lists(
        st.tuples(
            st.lists(st.integers(0, len(SHAPES) - 1), max_size=12),
            st.integers(0, 6),
        ),
        max_size=6,
    ))
    def test_place_batch_matches_sequential_place(self, rounds):
        """Rounds of (arrival batch, #releases): the batched scheduler and
        a twin running the plain sequential path must make identical
        decisions throughout."""
        batched = _make_scheduler()
        plain = _make_scheduler()
        in_flight = []
        for shape_ids, release_n in rounds:
            requests = [SHAPES[i] for i in shape_ids]
            got = batched.place_batch(requests)
            want = [plain.place(request) for request in requests]
            assert [w.name if w else None for w in got] == [
                w.name if w else None for w in want
            ]
            for request, b_worker, p_worker in zip(requests, got, want):
                if b_worker is not None:
                    in_flight.append((request, b_worker, p_worker))
            for _ in range(min(release_n, len(in_flight))):
                request, b_worker, p_worker = in_flight.pop(0)
                batched.release(b_worker, request)
                plain.release(p_worker, request)

    def test_release_inside_batch_is_visible(self):
        """A release mid-batch invalidates the cached shape view -- the
        next placement of that shape must see the freed capacity."""
        scheduler = _make_scheduler(n=1)
        capacity = scheduler.workers[0].resources.capacity["milliencode"]
        request = {"milliencode": capacity}  # the whole device
        with scheduler.batch():
            first = scheduler.place(request)
            assert first is not None
            assert scheduler.place(request) is None  # device is full
            scheduler.release(first, request)
            assert scheduler.place(request) is not None

    def test_nested_batch_joins_outer(self):
        scheduler = _make_scheduler(n=2)
        with scheduler.batch():
            outer = scheduler._batch
            with scheduler.batch():
                assert scheduler._batch is outer
            assert scheduler._batch is outer
        assert scheduler._batch is None


def _fleet_cluster(sim, hosts_n=3, **kwargs):
    hosts = [VcuHost(host_id=f"fm-host{i}") for i in range(hosts_n)]
    workers = [
        VcuWorker(vcu, host=host) for host in hosts for vcu in host.vcus
    ]
    cpu_workers = [CpuWorker(cores=16) for _ in range(2)]
    cluster = TranscodeCluster(
        sim, workers, cpu_workers, fleet_mode=True, seed=5, **kwargs
    )
    return hosts, cluster


def _upload(video_id):
    return build_transcode_graph(
        video_id=video_id, source=resolution("720p"), total_frames=300,
        fps=30.0, bucket=PopularityBucket.WARM,
    )


def _assert_count_exact(cluster):
    truth = sum(1 for w in cluster.vcu_workers if w.available())
    assert cluster._available_count == truth
    mask = cluster.availability_mask()
    assert mask is not None and int(mask.sum()) == truth
    for worker, bit in zip(cluster.vcu_workers, mask):
        assert bool(bit) == worker.available()


class TestFleetAvailability:
    def test_initial_count_matches_scan(self):
        sim = Simulator()
        _, cluster = _fleet_cluster(sim)
        _assert_count_exact(cluster)

    def test_count_exact_through_fault_and_repair_storm(self):
        """Corruptions, hangs, sweep disables, drains and repairs -- the
        incremental count must equal the ground-truth scan at every
        sample point and at the end."""
        sim = Simulator()
        hosts, cluster = _fleet_cluster(sim)
        vcus = [vcu for host in hosts for vcu in host.vcus]
        injector = FaultInjector(sim, vcus, seed=13)
        # A deterministic early corruption guarantees a caught-corrupt
        # quarantine; the random storms cover the rest of the paths.
        injector.corrupt_at(0.5, vcus[0])
        injector.random_corruptions(30.0, until=900.0)
        injector.random_hangs(120.0, until=900.0, duration=30.0)
        injector.random_hard_faults(2.0, until=900.0, count=3)
        manager = FailureManager(hosts, repair_cap=2, card_swap_threshold=2)
        sweeper = FailureSweeper(
            sim, manager, interval_seconds=60.0, repair_seconds=300.0,
            cluster=cluster,
        )
        sweeper.start(until=3600.0)

        def submitter():
            # Keep work arriving through the storm so faults land on
            # *active* workers, not an idle fleet.
            for i in range(30):
                cluster.submit(_upload(f"storm-v{i}"))
                yield 30.0

        sim.process(submitter(), name="storm-submitter")
        checks = []

        def monitor():
            while sim.now + 45.0 <= 3600.0:
                yield 45.0
                truth = sum(1 for w in cluster.vcu_workers if w.available())
                checks.append((sim.now, cluster._available_count, truth))

        sim.process(monitor(), name="fleet-monitor")
        sim.run()
        assert checks, "monitor never sampled"
        for at, counted, truth in checks:
            assert counted == truth, f"count drifted at t={at}"
        _assert_count_exact(cluster)
        # The storm actually exercised the mutation paths.
        assert cluster.stats.workers_quarantined > 0
        assert sweeper.sweeps > 0

    def test_healthy_vcu_count_uses_incremental_count(self):
        sim = Simulator()
        _, cluster = _fleet_cluster(sim)
        assert cluster.healthy_vcu_count() == cluster._available_count

    def test_note_availability_changed_contract(self):
        """Direct out-of-API mutation followed by the documented
        notification keeps the count exact."""
        sim = Simulator()
        _, cluster = _fleet_cluster(sim)
        worker = cluster.vcu_workers[0]
        worker.vcu.disable()  # bypasses the health machine on purpose
        cluster.note_availability_changed(worker)
        _assert_count_exact(cluster)
        worker.vcu.enable()
        cluster.note_availability_changed(worker)
        _assert_count_exact(cluster)


class TestSampledTelemetry:
    def _run_day(self, mode):
        with obs.installed() as hub:
            sim = Simulator()
            _, cluster = _fleet_cluster(
                sim, telemetry_mode=mode, telemetry_sample_seconds=5.0,
            )
            for i in range(10):
                cluster.submit(_upload(f"tele-v{i}"))
            sim.run()
            hist = hub.metrics.histogram("cluster.graph_latency_seconds")
            return cluster, (tuple(hist.counts), hist.total, hist.sum)

    def test_sampled_graph_latencies_match_exact(self):
        exact_cluster, exact_hist = self._run_day("exact")
        sampled_cluster, sampled_hist = self._run_day("sampled")
        assert exact_cluster.stats.completed_graphs == 10
        assert sampled_cluster.stats.completed_graphs == 10
        # Buffered observe_many delivers the identical final histogram.
        assert sampled_hist == exact_hist

    def test_sampler_flushes_and_terminates(self):
        sim = Simulator()
        _, cluster = _fleet_cluster(
            sim, telemetry_mode="sampled", telemetry_sample_seconds=5.0,
        )
        cluster.submit(_upload("flush-v0"))
        sim.run()  # terminates: the sampler stops once in-flight drains
        telemetry = cluster._fleet_telemetry
        assert telemetry is not None
        assert telemetry.flushes > 0
        assert telemetry._inflight == 0
        assert not telemetry._running

    def test_sampler_restarts_on_next_admission(self):
        sim = Simulator()
        _, cluster = _fleet_cluster(
            sim, telemetry_mode="sampled", telemetry_sample_seconds=5.0,
        )
        cluster.submit(_upload("wave-1"))
        sim.run()
        flushes_after_first = cluster._fleet_telemetry.flushes
        cluster.submit(_upload("wave-2"))
        sim.run()
        assert cluster._fleet_telemetry.flushes > flushes_after_first

    def test_invalid_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="telemetry_mode"):
            TranscodeCluster(sim, [], telemetry_mode="bogus")
