"""The scenario catalog as registered experiments: the CI contract.

Locks everything the ``scenario-smoke`` CI job relies on: all four
catalog experiments are registered under the ``catalog`` group with
grids from :mod:`repro.control.catalog`, their scorecard key sets match
per-scenario golden lists (drift in a key set is a deliberate,
reviewed change -- update the golden *and* bump the scenario's
``SCORECARD_VERSION``), and the smoke manifest is byte-identical at
``--jobs 1`` and ``--jobs 3``.
"""

from __future__ import annotations

import pytest

from repro.control import catalog
from repro.runner import default_registry
from repro.runner.executor import run_experiments
from repro.runner.manifest import build_manifest, manifest_text

#: Per-scenario golden key sets, spelled out: the CI gate's ground
#: truth.  A mismatch here means a scorecard changed shape without a
#: version bump -- exactly the drift the catalog exists to catch.
GOLDEN_KEYS = {
    "canary-rollout": (
        "cluster.completed_graphs", "cluster.corrupt_caught",
        "cluster.hangs", "cluster.retries", "cluster.software_fallbacks",
        "cluster.workers_quarantined", "cluster.workers_rehabilitated",
        "conservation.ok", "delta.throughput_frac", "delta.unhealthy_frac",
        "jobs.done", "jobs.failed", "jobs.shed", "jobs.submitted",
        "rollout.candidate", "rollout.promoted",
        "rollout.regression_detected", "rollout.rolled_back",
        "rollout.stage", "schema_version",
        "slice.baseline.mpix_per_vcu_s", "slice.baseline.unhealthy_frac",
        "slice.baseline.vcus", "slice.canary.mpix_per_vcu_s",
        "slice.canary.unhealthy_frac", "slice.canary.vcus",
    ),
    "chaos-campaign": (
        "availability.exact", "campaign.blast_hosts", "campaign.repair_cap",
        "cluster.corrupt_caught", "cluster.hangs", "cluster.host_evictions",
        "cluster.retries", "cluster.software_fallbacks",
        "cluster.workers_quarantined", "cluster.workers_rehabilitated",
        "conservation.ok", "fleet.available_end", "fleet.disabled_by_sweeps",
        "fleet.vcus", "jobs.completed", "jobs.submitted",
        "repair.hosts_repaired", "schema_version", "steps.completed",
        "sweeper.repairs_completed", "sweeper.repairs_started",
        "sweeper.sweeps",
    ),
    "tuning-timeline": (
        "bitrate_vs_software.h264", "bitrate_vs_software.vp9",
        "decoder_util", "encoder_util", "milestones_shipped", "month",
        "rc_efficiency.h264", "rc_efficiency.vp9", "schema_version",
        "throughput_mpix_s", "total_megapixels", "vcu_workers",
    ),
    "surge-mix": (
        "autoscale.actions", "autoscale.peak_slots",
        "class.batch.completion_rate", "class.batch.done",
        "class.batch.failed", "class.batch.queue_p50",
        "class.batch.queue_p90", "class.batch.queue_p99",
        "class.batch.retries", "class.batch.shed",
        "class.batch.shed_rate", "class.batch.submitted",
        "class.live.completion_rate", "class.live.done",
        "class.live.failed", "class.live.queue_p50",
        "class.live.queue_p90", "class.live.queue_p99",
        "class.live.retries", "class.live.shed", "class.live.shed_rate",
        "class.live.submitted", "class.upload.completion_rate",
        "class.upload.done", "class.upload.failed",
        "class.upload.queue_p50", "class.upload.queue_p90",
        "class.upload.queue_p99", "class.upload.retries",
        "class.upload.shed", "class.upload.shed_rate",
        "class.upload.submitted", "conservation.ok", "dead_letter.count",
        "event.end", "event.jobs_in_window", "event.start",
        "failover.routed", "jobs.done", "jobs.failed", "jobs.shed",
        "jobs.submitted", "scenario", "schema_version", "spill.routed",
    ),
}


class TestRegistration:
    def test_catalog_group_lists_exactly_the_four(self):
        assert default_registry().names(group="catalog") == sorted(
            catalog.catalog_names()
        )

    def test_grids_come_from_the_catalog(self):
        registry = default_registry()
        for name, grid_fn in (
            ("canary-rollout", catalog.canary_grid),
            ("chaos-campaign", catalog.chaos_grid),
            ("tuning-timeline", catalog.timeline_grid),
            ("surge-mix", catalog.surge_grid),
        ):
            experiment = registry.get(name)
            assert list(experiment.grid) == grid_fn()
            assert list(experiment.smoke_grid) == grid_fn(smoke=True)
            assert experiment.group == catalog.CATALOG_GROUP

    def test_seeds_and_sources_match_catalog_entries(self):
        registry = default_registry()
        for entry in catalog.CATALOG:
            experiment = registry.get(entry.name)
            assert experiment.seed == entry.seed
            assert experiment.sources == entry.sources
            assert experiment.schema.fields == entry.arm_fields + ("scorecard",)

    def test_smoke_grids_are_cheaper(self):
        registry = default_registry()
        for name in catalog.catalog_names():
            experiment = registry.get(name)
            assert len(experiment.smoke_grid) <= len(experiment.grid)


class TestGoldenScorecardKeys:
    def test_golden_covers_every_catalog_entry(self):
        assert set(GOLDEN_KEYS) == set(catalog.catalog_names())

    @pytest.mark.parametrize("name", sorted(GOLDEN_KEYS))
    def test_keys_match_golden(self, name):
        assert catalog.scorecard_keys(name) == GOLDEN_KEYS[name]


class TestSmokeRuns:
    @pytest.fixture(scope="class")
    def smoke_runs(self):
        result = run_experiments(
            default_registry(),
            names=list(catalog.catalog_names()),
            smoke=True,
            jobs=1,
        )
        return result.runs

    def test_every_scorecard_matches_its_golden_keys(self, smoke_runs):
        for run in smoke_runs:
            for result in run.results:
                card = result["scorecard"]
                assert tuple(sorted(card)) == GOLDEN_KEYS[run.experiment.name]

    def test_canary_smoke_catches_the_regression(self, smoke_runs):
        by_candidate = {
            result["candidate"]: result["scorecard"]
            for run in smoke_runs if run.experiment.name == "canary-rollout"
            for result in run.results
        }
        assert by_candidate["fw-1.1.0-rc1"]["rollout.rolled_back"] is True
        assert by_candidate["fw-1.1.0-rc2"]["rollout.promoted"] is True
        for card in by_candidate.values():
            assert card["conservation.ok"] is True

    def test_chaos_smoke_conserves_jobs(self, smoke_runs):
        for run in smoke_runs:
            if run.experiment.name != "chaos-campaign":
                continue
            for result in run.results:
                assert result["scorecard"]["conservation.ok"] is True
                assert result["scorecard"]["availability.exact"] is True

    def test_timeline_smoke_months_are_longitudinal(self, smoke_runs):
        months = [
            result["month"]
            for run in smoke_runs if run.experiment.name == "tuning-timeline"
            for result in run.results
        ]
        assert months == list(catalog.TIMELINE_SMOKE_MONTHS)

    def test_manifest_byte_identical_across_jobs(self, smoke_runs):
        serial = manifest_text(build_manifest(smoke_runs))
        sharded = run_experiments(
            default_registry(),
            names=list(catalog.catalog_names()),
            smoke=True,
            jobs=3,
        )
        assert manifest_text(build_manifest(sharded.runs)) == serial
