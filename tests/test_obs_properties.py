"""Property-based tests (hypothesis) for the observability primitives.

The histogram and the time-weighted tracker back every exported metric,
so their algebra gets the property treatment: count conservation, a
monotone CDF, exact (associative, commutative) merging, and averages
bounded by the recorded extremes.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.registry import Histogram, MetricsRegistry, UtilizationTracker
from repro.obs.trace import TraceSpan, _clean

finite_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

bounds_lists = st.lists(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False), min_size=1,
    max_size=8, unique=True,
).map(sorted)


# --------------------------------------------------------------------- #
# Histogram algebra


@given(bounds=bounds_lists, values=st.lists(finite_values, max_size=200))
def test_histogram_conserves_counts(bounds, values):
    hist = Histogram("h", bounds=bounds)
    for value in values:
        hist.observe(value)
    assert sum(hist.counts) == hist.total == len(values)
    assert len(hist.counts) == len(bounds) + 1


@given(bounds=bounds_lists, values=st.lists(finite_values, max_size=200))
def test_histogram_cdf_is_monotone_and_complete(bounds, values):
    hist = Histogram("h", bounds=bounds)
    for value in values:
        hist.observe(value)
    cumulative = hist.cumulative()
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == len(values)
    # The CDF agrees with direct counting at every bound.
    for bound, running in zip(hist.bounds, cumulative):
        assert running == sum(1 for v in values if v <= bound)


@given(
    bounds=bounds_lists,
    values_a=st.lists(finite_values, max_size=60),
    values_b=st.lists(finite_values, max_size=60),
    values_c=st.lists(finite_values, max_size=60),
)
def test_histogram_merge_is_associative_and_commutative(
    bounds, values_a, values_b, values_c
):
    def build(values):
        hist = Histogram("h", bounds=bounds)
        for value in values:
            hist.observe(value)
        return hist

    a, b, c = build(values_a), build(values_b), build(values_c)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    # Bucket counts are integers: merging is *exactly* associative.
    assert left.counts == right.counts
    assert left.total == right.total
    # The float sum is associative only up to rounding.
    assert abs(left.sum - right.sum) <= 1e-6 * max(1.0, abs(left.sum))
    swapped = b.merge(a)
    assert swapped.counts == a.merge(b).counts
    # Merging equals observing the concatenation.
    combined = build(values_a + values_b + values_c)
    assert left.counts == combined.counts


# --------------------------------------------------------------------- #
# UtilizationTracker bounds


@given(
    samples=st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_tracker_average_is_bounded_by_recorded_values(samples):
    """With the first sample at t=0 the average lies in [min, max]."""
    tracker = UtilizationTracker()
    now = 0.0
    values = []
    for delta, value in samples:
        tracker.record(now, value)
        values.append(value)
        now += delta
    low, high = min(values), max(values)
    average = tracker.average(now)
    assert low - 1e-9 <= average <= high + 1e-9


@given(
    value=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    span=st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
)
def test_tracker_constant_signal_averages_to_itself(value, span):
    tracker = UtilizationTracker()
    tracker.record(0.0, value)
    assert abs(tracker.average(span) - value) <= 1e-9 * max(1.0, value)


# --------------------------------------------------------------------- #
# Snapshot / serialization determinism


@given(
    names=st.lists(
        st.text(alphabet="abcdef.", min_size=1, max_size=12), min_size=1,
        max_size=10, unique=True,
    ),
    increments=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                        max_size=10),
)
def test_snapshot_is_order_independent(names, increments):
    ops = list(zip(names, increments))
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for name, amount in ops:
        forward.counter(name).inc(amount)
    for name, amount in reversed(ops):
        backward.counter(name).inc(amount)
    assert forward.snapshot() == backward.snapshot()
    assert list(forward.snapshot()) == sorted(forward.snapshot())


@given(
    attrs=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.booleans(), st.integers(-1000, 1000), finite_values,
            st.text(max_size=12),
            st.sets(st.integers(0, 50), max_size=5),
        ),
        max_size=6,
    ),
    t0=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
)
def test_span_serialization_is_stable_and_round_trips(attrs, t0):
    span = TraceSpan(seq=0, kind="step", name="s", t0=t0, t1=t0, attrs=attrs)
    once, twice = span.to_json(), span.to_json()
    assert once == twice
    import json

    again = TraceSpan.from_dict(json.loads(once))
    assert again.to_json() == once  # cleaning is idempotent


@given(values=st.lists(st.one_of(finite_values, st.sets(st.integers(0, 9)))))
def test_clean_output_is_json_safe(values):
    import json

    json.dumps(_clean(values))  # must not raise
