"""Unit tests for VCU and CPU workers."""

import pytest

from repro.cluster.worker import (
    IO_BYTES_PER_SECOND,
    STEP_OVERHEAD_SECONDS,
    CpuWorker,
    VcuWorker,
)
from repro.vcu.chip import Vcu, VcuTask
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.video.frame import output_ladder, resolution


def make_task(source="720p", is_mot=True, frames=150):
    src = resolution(source)
    return VcuTask(
        codec="h264", mode=EncodingMode.OFFLINE_TWO_PASS,
        input_resolution=src,
        outputs=output_ladder(src) if is_mot else [src],
        frame_count=frames, fps=30.0, is_mot=is_mot,
    )


class TestVcuWorker:
    def test_step_time_includes_overhead_and_io(self):
        worker = VcuWorker(Vcu(DEFAULT_VCU_SPEC))
        task = make_task()
        request = worker.request_for(task)
        seconds = worker.step_seconds(task, request)
        device = task.duration_seconds / worker.target_speedup
        assert seconds > device + STEP_OVERHEAD_SECONDS * 0.99

    def test_numa_oblivious_slower(self):
        task = make_task()
        aware = VcuWorker(Vcu(DEFAULT_VCU_SPEC), numa_aware=True)
        oblivious = VcuWorker(Vcu(DEFAULT_VCU_SPEC), numa_aware=False)
        request = aware.request_for(task)
        assert oblivious.step_seconds(task, request) > aware.step_seconds(task, request)

    def test_corrupt_vcu_is_fast(self):
        task = make_task()
        healthy = VcuWorker(Vcu(DEFAULT_VCU_SPEC), golden_screening=False)
        bad_vcu = Vcu(DEFAULT_VCU_SPEC)
        bad_vcu.mark_corrupt()
        corrupt = VcuWorker(bad_vcu, golden_screening=False)
        request = healthy.request_for(task)
        assert corrupt.step_seconds(task, request) < healthy.step_seconds(task, request)

    def test_admit_tracks_active_steps(self):
        worker = VcuWorker(Vcu(DEFAULT_VCU_SPEC))
        request = worker.request_for(make_task())
        assert worker.is_idle()
        assert worker.try_admit(request)
        assert not worker.is_idle()
        worker.release(request)
        assert worker.is_idle()

    def test_refused_worker_rejects_admission(self):
        vcu = Vcu(DEFAULT_VCU_SPEC)
        vcu.mark_corrupt()
        worker = VcuWorker(vcu, golden_screening=True)
        assert not worker.try_admit({"milliencode": 1.0})

    def test_quarantine(self):
        worker = VcuWorker(Vcu(DEFAULT_VCU_SPEC))
        assert worker.available()
        worker.abort_and_quarantine()
        assert not worker.available()

    def test_io_time_scales_with_pixels(self):
        # Resolutions small enough that neither task hits the millicore
        # caps (a capped grant would stretch device time and mask I/O).
        worker = VcuWorker(Vcu(DEFAULT_VCU_SPEC))
        small, big = make_task("360p"), make_task("720p")
        small_req, big_req = worker.request_for(small), worker.request_for(big)
        # Same content duration and speedup: the difference is I/O bytes.
        delta = worker.step_seconds(big, big_req) - worker.step_seconds(small, small_req)
        expected_io_delta = (
            (big.input_pixels + big.output_pixels)
            - (small.input_pixels + small.output_pixels)
        ) / 6.1 / 8.0 / IO_BYTES_PER_SECOND
        assert delta == pytest.approx(expected_io_delta, rel=0.05)


class TestCpuWorker:
    def test_transcode_time_uses_skylake_model(self):
        worker = CpuWorker(cores=16)
        task = make_task(is_mot=False, source="1080p")
        request = worker.request_for_transcode(task)
        seconds = worker.transcode_seconds(task, request)
        # 150 frames of 1080p H.264 on 8 cores: minutes, not milliseconds.
        assert 3.0 < seconds < 600.0

    def test_vp9_slower_than_h264(self):
        import dataclasses

        worker = CpuWorker(cores=16)
        h264 = make_task(is_mot=False, source="1080p")
        vp9 = dataclasses.replace(h264, codec="vp9")
        request = worker.request_for_transcode(h264)
        assert worker.transcode_seconds(vp9, request) > 3.0 * worker.transcode_seconds(
            h264, request
        )

    def test_cpu_step_scales_with_grant(self):
        worker = CpuWorker(cores=16)
        one = worker.cpu_step_seconds(8.0, {"cpu_cores": 1.0})
        four = worker.cpu_step_seconds(8.0, {"cpu_cores": 4.0})
        assert one == pytest.approx(4 * four)

    def test_validates_cores(self):
        with pytest.raises(ValueError):
            CpuWorker(cores=0)
