"""Unit tests for BD-rate, throughput units, and table formatting."""

import numpy as np
import pytest

from repro.metrics.quality import RDPoint, bd_psnr, bd_rate, rd_curve_is_monotonic
from repro.metrics.reporting import format_table
from repro.metrics.throughput import megapixels, mpix_per_second, pixels_per_bit
from repro.video.frame import resolution


def _curve(scale: float, offset_db: float = 0.0):
    """A synthetic log-linear RD curve: psnr = 10*log2(rate) + offset."""
    rates = [0.5e6, 1e6, 2e6, 4e6, 8e6]
    return [RDPoint(bitrate=r * scale, psnr=10 * np.log2(r / 1e6) + 35 + offset_db)
            for r in rates]


class TestBDRate:
    def test_identical_curves_are_zero(self):
        curve = _curve(1.0)
        assert bd_rate(curve, curve) == pytest.approx(0.0, abs=1e-6)

    def test_known_rate_shift(self):
        # Test curve needs exactly 30% fewer bits at every quality.
        reference = _curve(1.0)
        test = _curve(0.7)
        assert bd_rate(reference, test) == pytest.approx(-30.0, abs=0.5)

    def test_rate_increase_positive(self):
        assert bd_rate(_curve(1.0), _curve(1.18)) == pytest.approx(18.0, abs=0.5)

    def test_antisymmetry_approximate(self):
        a, b = _curve(1.0), _curve(0.8)
        forward = bd_rate(a, b)
        backward = bd_rate(b, a)
        assert (1 + forward / 100) * (1 + backward / 100) == pytest.approx(1.0, abs=0.01)

    def test_bd_psnr_sign(self):
        # Better curve (same rate, +2 dB) has positive BD-PSNR.
        assert bd_psnr(_curve(1.0), _curve(1.0, offset_db=2.0)) == pytest.approx(2.0, abs=0.05)

    def test_requires_overlap(self):
        low = [RDPoint(r, 20 + i) for i, r in enumerate([1e5, 2e5, 3e5, 4e5])]
        high = [RDPoint(r, 50 + i) for i, r in enumerate([1e6, 2e6, 3e6, 4e6])]
        with pytest.raises(ValueError):
            bd_rate(low, high)

    def test_requires_enough_points(self):
        curve = _curve(1.0)[:3]
        with pytest.raises(ValueError):
            bd_rate(curve, curve)

    def test_monotonicity_helper(self):
        assert rd_curve_is_monotonic(_curve(1.0))
        bad = _curve(1.0) + [RDPoint(bitrate=16e6, psnr=10.0)]
        assert not rd_curve_is_monotonic(bad)

    def test_nonpositive_bitrate_rejected(self):
        with pytest.raises(ValueError):
            RDPoint(bitrate=0, psnr=30)


class TestThroughput:
    def test_megapixels_counts_all_outputs(self):
        ladder = [resolution("480p"), resolution("360p")]
        expected = (854 * 480 + 640 * 360) / 1e6
        assert megapixels(ladder) == pytest.approx(expected)

    def test_mpix_per_second(self):
        assert mpix_per_second(2e6, 2.0) == pytest.approx(1.0)

    def test_mpix_rejects_zero_time(self):
        with pytest.raises(ValueError):
            mpix_per_second(1e6, 0)

    def test_pixels_per_bit_paper_average(self):
        # YouTube-recommended 1080p30 at ~10 Mbps lands near the paper's
        # 6.1 pixels-per-bit fleet average.
        value = pixels_per_bit(resolution("1080p"), 30, 10e6)
        assert 5 < value < 8


class TestReporting:
    def test_format_basic(self):
        table = format_table(["System", "Mpix/s"], [["Skylake", 714.0], ["20xVCU", 14932.0]])
        assert "Skylake" in table
        assert "14,932" in table

    def test_title_included(self):
        table = format_table(["a"], [[1]], title="Table 1")
        assert table.splitlines()[0] == "Table 1"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
