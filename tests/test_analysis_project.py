"""Whole-program analysis passes: import graph, layering, races, machines.

Mirrors the per-file suite in test_analysis_rules.py: every pass gets a
true-positive, a clean case, and a pragma case, plus hypothesis property
coverage for the DAG validator and a schema-stability pin for the
``--graph --json`` document.
"""

import json
import subprocess
import textwrap
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.layering import (
    ALLOWED_DEPS,
    ArchitectureLayeringRule,
    validate_dag,
)
from repro.analysis.core import run_lint
from repro.analysis.machines import MachineSpec, StateMachineRule
from repro.analysis.project import (
    GRAPH_JSON_VERSION,
    ProjectContext,
    default_project_rules,
    graph_document,
    load_project,
    render_dot,
)
from repro.analysis.races import SimRaceRule
from repro.cli import main

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def ctx(sources):
    return ProjectContext.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )


def check(rule, sources):
    return list(rule.check(ctx(sources)))


# --------------------------------------------------------------------- #
# Import-graph construction


class TestImportGraph:
    def test_edge_kind_classification(self):
        project = ctx({
            "src/repro/a.py": """\
                import repro.b
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.c import Thing


                def late():
                    from repro import c
                    return c
                """,
            "src/repro/b.py": "x = 1\n",
            "src/repro/c.py": "class Thing: pass\n",
        })
        kinds = {(e.src, e.dst): e.kind for e in project.edges}
        assert kinds[("repro.a", "repro.b")] == "toplevel"
        assert kinds[("repro.a", "repro.c")] in ("type_checking", "lazy")
        by_kind = sorted(e.kind for e in project.edges)
        assert by_kind == ["lazy", "toplevel", "type_checking"]

    def test_relative_import_resolves_to_sibling(self):
        project = ctx({
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/a.py": "from . import b\nfrom .b import helper\n",
            "src/repro/pkg/b.py": "def helper(): pass\n",
        })
        dsts = {e.dst for e in project.edges if e.src == "repro.pkg.a"}
        assert "repro.pkg.b" in dsts

    def test_from_import_resolves_symbol_to_module(self):
        project = ctx({
            "src/repro/a.py": "from repro.b import helper\n",
            "src/repro/b.py": "def helper(): pass\n",
        })
        assert [(e.src, e.dst) for e in project.edges] == [("repro.a", "repro.b")]

    def test_graph_document_schema_is_stable(self):
        project = ctx({
            "src/repro/video/frame.py": "x = 1\n",
            "src/repro/metrics/quality.py": "from repro.video import frame\n",
        })
        doc = graph_document(project)
        assert doc["version"] == GRAPH_JSON_VERSION == 1
        assert set(doc) == {"version", "modules", "edges", "packages"}
        assert all(set(m) == {"name", "path", "package"} for m in doc["modules"])
        assert all(
            set(e) == {"src", "dst", "kind", "line"} for e in doc["edges"]
        )
        assert doc["packages"] == {"metrics": ["video"]}

    def test_type_checking_edges_stay_out_of_package_deps(self):
        project = ctx({
            "src/repro/video/frame.py": textwrap.dedent("""\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.metrics.quality import RDPoint
                """),
            "src/repro/metrics/quality.py": "class RDPoint: pass\n",
        })
        doc = graph_document(project)
        assert doc["packages"].get("video", []) == []

    def test_render_dot_styles_by_kind(self):
        project = ctx({
            "src/repro/video/frame.py": "x = 1\n",
            "src/repro/metrics/quality.py": textwrap.dedent("""\
                from repro.video import frame


                def late():
                    from repro.video import frame as f
                    return f
                """),
        })
        dot = render_dot(project)
        assert dot.startswith("digraph repro {")
        assert '"metrics" -> "video";' in dot  # toplevel beats lazy

    def test_load_project_reports_parse_errors(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n")
        (tmp_path / "src" / "broken.py").write_text("def broken(:\n")
        project, errors = load_project(tmp_path, ("src",))
        assert len(errors) == 1 and "broken.py" in errors[0]
        assert project.module_for_path("src/ok.py") is not None


# --------------------------------------------------------------------- #
# Architecture layering


TINY_DAG = {
    "video": frozenset(),
    "metrics": frozenset({"video"}),
}


class TestLayering:
    def test_undeclared_dependency_is_flagged(self):
        findings = check(ArchitectureLayeringRule(TINY_DAG), {
            "src/repro/video/frame.py": "from repro.metrics import quality\n",
            "src/repro/metrics/quality.py": "x = 1\n",
        })
        assert [f.rule for f in findings] == ["layering"]
        assert "video" in findings[0].message
        assert findings[0].path == "src/repro/video/frame.py"

    def test_declared_dependency_is_clean(self):
        findings = check(ArchitectureLayeringRule(TINY_DAG), {
            "src/repro/metrics/quality.py": "from repro.video import frame\n",
            "src/repro/video/frame.py": "x = 1\n",
        })
        assert findings == []

    def test_lazy_imports_must_still_be_declared(self):
        findings = check(ArchitectureLayeringRule(TINY_DAG), {
            "src/repro/video/frame.py": textwrap.dedent("""\
                def late():
                    from repro.metrics import quality
                    return quality
                """),
            "src/repro/metrics/quality.py": "x = 1\n",
        })
        assert [f.rule for f in findings] == ["layering"]
        assert "lazy" in findings[0].message

    def test_type_checking_imports_are_exempt(self):
        findings = check(ArchitectureLayeringRule(TINY_DAG), {
            "src/repro/video/frame.py": textwrap.dedent("""\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.metrics.quality import RDPoint
                """),
            "src/repro/metrics/quality.py": "class RDPoint: pass\n",
        })
        assert findings == []

    def test_import_time_cycle_is_flagged_as_cycle(self):
        findings = check(ArchitectureLayeringRule(TINY_DAG), {
            "src/repro/video/frame.py": "from repro.metrics import quality\n",
            "src/repro/metrics/quality.py": "from repro.video import frame\n",
        })
        assert any("cycle" in f.message for f in findings)

    def test_pragma_exempts_sanctioned_lazy_import(self, tmp_path):
        (tmp_path / "src" / "repro" / "video").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "metrics").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "video" / "frame.py").write_text(
            "def late():\n"
            "    from repro.metrics import quality"
            "  # lint: allow=layering -- sanctioned\n"
            "    return quality\n"
        )
        (tmp_path / "src" / "repro" / "metrics" / "quality.py").write_text(
            "x = 1\n"
        )
        result = run_lint(
            tmp_path, targets=["src"], rules=[],
            project_rules=[ArchitectureLayeringRule(TINY_DAG)],
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_committed_dag_is_valid_and_rule_registry_complete(self):
        validate_dag(ALLOWED_DEPS)
        ids = {rule.id for rule in default_project_rules()}
        assert ids == {"layering", "sim-race", "state-machine"}

    def test_validate_dag_rejects_self_and_unknown_deps(self):
        with pytest.raises(ValueError, match="self-dependency"):
            validate_dag({"a": frozenset({"a"})})
        with pytest.raises(ValueError, match="undeclared"):
            validate_dag({"a": frozenset({"ghost"})})

    @given(
        st.integers(min_value=2, max_value=8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.sets(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ).filter(lambda p: p[0] < p[1]),
                    max_size=12,
                ),
            )
        )
    )
    def test_dag_validator_accepts_dags_rejects_cycles(self, case):
        n, edges = case
        allowed = {f"p{i}": frozenset() for i in range(n)}
        for lo, hi in edges:
            allowed[f"p{hi}"] = allowed[f"p{hi}"] | {f"p{lo}"}
        order = validate_dag(allowed)
        assert sorted(order) == sorted(allowed)
        # Every declared dep appears before its dependant.
        pos = {pkg: i for i, pkg in enumerate(order)}
        assert all(
            pos[dep] < pos[pkg]
            for pkg, deps in allowed.items()
            for dep in deps
        )
        if edges:
            lo, hi = sorted(edges)[0]
            cyclic = dict(allowed)
            cyclic[f"p{lo}"] = cyclic[f"p{lo}"] | {f"p{hi}"}
            with pytest.raises(ValueError, match="cyclic"):
                validate_dag(cyclic)


# --------------------------------------------------------------------- #
# Sim-process race detection


class TestSimRace:
    SHARED_WRITERS = {
        "src/repro/shared.py": """\
            LEDGER = []


            def writer_a():
                LEDGER.append("a")
                yield 1.0


            def writer_b():
                LEDGER.append("b")
                yield 1.0
            """,
        "src/repro/boot.py": """\
            from repro.shared import writer_a, writer_b


            def start(sim):
                sim.process(writer_a())
                sim.process(writer_b())
            """,
    }

    def test_shared_state_written_from_two_roots(self):
        findings = check(SimRaceRule(), self.SHARED_WRITERS)
        assert [f.rule for f in findings] == ["sim-race"]
        finding = findings[0]
        assert finding.path == "src/repro/shared.py" and finding.line == 1
        assert "writer_a" in finding.message and "writer_b" in finding.message

    def test_single_root_writer_is_clean(self):
        findings = check(SimRaceRule(), {
            "src/repro/shared.py": """\
                LEDGER = []


                def writer_a():
                    LEDGER.append("a")
                    yield 1.0


                def reader_b():
                    n = len(LEDGER)
                    yield float(n)
                """,
            "src/repro/boot.py": """\
                from repro.shared import writer_a, reader_b


                def start(sim):
                    sim.process(writer_a())
                    sim.process(reader_b())
                """,
        })
        assert findings == []

    def test_instance_rebound_attribute_is_not_shared(self):
        findings = check(SimRaceRule(), {
            "src/repro/shared.py": """\
                class Worker:
                    backlog = []

                    def __init__(self):
                        self.backlog = []

                    def run_a(self):
                        self.backlog.append("a")
                        yield 1.0

                    def run_b(self):
                        self.backlog.append("b")
                        yield 1.0
                """,
            "src/repro/boot.py": """\
                from repro.shared import Worker


                def start(sim):
                    w1, w2 = Worker(), Worker()
                    sim.process(w1.run_a())
                    sim.process(w2.run_b())
                """,
        })
        assert findings == []

    def test_yield_from_helper_blocking_call_is_reached(self):
        findings = check(SimRaceRule(), {
            "src/repro/proc.py": """\
                from repro.helpers import pause


                def worker():
                    yield from pause()


                def start(sim):
                    sim.process(worker())
                """,
            "src/repro/helpers.py": """\
                import time


                def pause():
                    time.sleep(1.0)
                    yield 1.0
                """,
        })
        assert [f.rule for f in findings] == ["sim-race"]
        assert "yield from" in findings[0].message
        assert findings[0].path == "src/repro/helpers.py"

    def test_race_pragma_on_definition_line(self, tmp_path):
        base = tmp_path / "src" / "repro"
        base.mkdir(parents=True)
        (base / "shared.py").write_text(
            "LEDGER = []"
            "  # lint: allow=sim-race -- drained before inspection\n"
            "\n\n"
            "def writer_a():\n"
            "    LEDGER.append('a')\n"
            "    yield 1.0\n"
            "\n\n"
            "def writer_b():\n"
            "    LEDGER.append('b')\n"
            "    yield 1.0\n"
        )
        (base / "boot.py").write_text(
            "from repro.shared import writer_a, writer_b\n"
            "\n\n"
            "def start(sim):\n"
            "    sim.process(writer_a())\n"
            "    sim.process(writer_b())\n"
        )
        result = run_lint(
            tmp_path, targets=["src"], rules=[], project_rules=[SimRaceRule()]
        )
        assert result.findings == []
        assert result.suppressed == 1


# --------------------------------------------------------------------- #
# State-machine verification


FSM_STATES = textwrap.dedent("""\
    from enum import Enum


    class Phase(Enum):
        IDLE = "idle"
        RUN = "run"
        DONE = "done"


    LEGAL = {
        Phase.IDLE: (Phase.RUN,),
        Phase.RUN: (Phase.DONE,),
        Phase.DONE: (),
    }
    """)

FSM_MACHINE = textwrap.dedent("""\
    from repro.fsm.states import LEGAL, Phase


    class Box:
        def __init__(self):
            self.phase = Phase.IDLE

        def transition(self, new):
            if new not in LEGAL[self.phase]:
                raise RuntimeError("illegal")
            self.phase = new

        def start(self):
            if self.phase is Phase.IDLE:
                self.transition(Phase.RUN)

        def finish(self):
            if self.phase is Phase.RUN:
                self.transition(Phase.DONE)
    """)

FSM_SPEC = MachineSpec(
    name="phase",
    enum_module="repro.fsm.states",
    enum_name="Phase",
    table_module="repro.fsm.states",
    table_name="LEGAL",
    choke_module="repro.fsm.machine",
    choke_class="Box",
    choke_method="transition",
    state_attr="phase",
    initial=("IDLE",),
    scope_packages=("fsm",),
)


def fsm_sources(machine=FSM_MACHINE, states=FSM_STATES):
    return {
        "src/repro/fsm/__init__.py": "",
        "src/repro/fsm/states.py": states,
        "src/repro/fsm/machine.py": machine,
    }


class TestStateMachine:
    def rule(self):
        return StateMachineRule(specs=[FSM_SPEC])

    def test_well_formed_machine_is_clean(self):
        assert check(self.rule(), fsm_sources()) == []

    def test_undeclared_transition_site_is_flagged(self):
        machine = FSM_MACHINE + textwrap.dedent("""\

            def rewind(box):
                if box.phase is Phase.DONE:
                    box.transition(Phase.IDLE)
            """)
        findings = check(self.rule(), fsm_sources(machine))
        assert any(
            "DONE -> IDLE" in f.message and "does not declare" in f.message
            for f in findings
        )

    def test_uncovered_declared_transition_anchors_at_table(self):
        machine = FSM_MACHINE.replace(
            "    def finish(self):\n"
            "        if self.phase is Phase.RUN:\n"
            "            self.transition(Phase.DONE)\n",
            "",
        )
        findings = check(self.rule(), fsm_sources(machine))
        assert any(
            "RUN -> DONE" in f.message and "no runtime site" in f.message
            and f.path == "src/repro/fsm/states.py"
            for f in findings
        )

    def test_stray_state_write_outside_choke(self):
        machine = FSM_MACHINE + textwrap.dedent("""\

            def hack(box):
                box.phase = Phase.DONE
            """)
        findings = check(self.rule(), fsm_sources(machine))
        assert any("bypasses Box.transition" in f.message for f in findings)

    def test_missing_table_entry_for_member(self):
        states = FSM_STATES.replace("    Phase.DONE: (),\n", "")
        findings = check(self.rule(), fsm_sources(states=states))
        assert any(
            "'DONE' has no entry" in f.message for f in findings
        )

    def test_declared_self_loop_is_flagged(self):
        states = FSM_STATES.replace(
            "Phase.RUN: (Phase.DONE,),", "Phase.RUN: (Phase.RUN, Phase.DONE),"
        )
        findings = check(self.rule(), fsm_sources(states=states))
        assert any("self-loop" in f.message for f in findings)

    def test_unreachable_state_is_flagged(self):
        states = FSM_STATES.replace(
            "Phase.IDLE: (Phase.RUN,),", "Phase.IDLE: (Phase.DONE,),"
        ).replace(
            "Phase.DONE: (),", "Phase.DONE: (Phase.IDLE,),"
        )
        machine = """\
            from repro.fsm.states import LEGAL, Phase


            class Box:
                def __init__(self):
                    self.phase = Phase.IDLE

                def transition(self, new):
                    if new not in LEGAL[self.phase]:
                        raise RuntimeError("illegal")
                    self.phase = new
            """
        findings = check(self.rule(), fsm_sources(machine, states))
        assert any("'RUN' is unreachable" in f.message for f in findings)

    def test_site_pragma_suppresses(self, tmp_path):
        base = tmp_path / "src" / "repro" / "fsm"
        base.mkdir(parents=True)
        (base / "__init__.py").write_text("")
        (base / "states.py").write_text(textwrap.dedent(FSM_STATES))
        machine = textwrap.dedent(FSM_MACHINE) + (
            "\n"
            "def rewind(box):\n"
            "    if box.phase is Phase.DONE:\n"
            "        box.transition(Phase.IDLE)"
            "  # lint: allow=state-machine -- test-only reset\n"
        )
        (base / "machine.py").write_text(machine)
        result = run_lint(
            tmp_path, targets=["src"], rules=[],
            project_rules=[StateMachineRule(specs=[FSM_SPEC])],
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_default_machines_hold_on_the_real_tree(self):
        project, errors = load_project(REPO_ROOT, ("src",))
        assert errors == []
        assert list(StateMachineRule().check(project)) == []


# --------------------------------------------------------------------- #
# CLI: --graph and --changed-only


class TestGraphCli:
    def test_graph_json_schema(self, capsys):
        assert main(["lint", "--root", str(REPO_ROOT), "--graph", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert set(doc) == {"version", "modules", "edges", "packages"}
        # The committed DAG must cover every runtime package edge.
        for pkg, deps in doc["packages"].items():
            declared = ALLOWED_DEPS.get(pkg, frozenset())
            undeclared = [
                d for d in deps if d not in declared and d != pkg
            ]
            assert pkg in ALLOWED_DEPS
            # The sanctioned workloads->control pragma is the only hole.
            assert undeclared in ([], ["control"]), (pkg, undeclared)

    def test_graph_dot_output(self, capsys):
        assert main(["lint", "--root", str(REPO_ROOT), "--graph"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph repro {")
        assert '"cluster" -> "vcu"' in out


def git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *argv],
        cwd=cwd, check=True, capture_output=True,
    )


class TestChangedOnlyCli:
    def _repo(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "steady.py").write_text("import random\n")  # old finding
        (src / "edited.py").write_text("x = 1\n")
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", "-A")
        git(tmp_path, "commit", "-q", "-m", "seed")
        return src

    def test_only_changed_files_are_linted(self, tmp_path, capsys):
        src = self._repo(tmp_path)
        (src / "edited.py").write_text("import time\nT = time.time()\n")
        rc = main([
            "lint", "--root", str(tmp_path), "--changed-only", "--base", "HEAD",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "edited.py" in out
        assert "steady.py" not in out  # unchanged finding not rescanned

    def test_no_changes_is_a_clean_noop(self, tmp_path, capsys):
        self._repo(tmp_path)
        rc = main([
            "lint", "--root", str(tmp_path), "--changed-only", "--base", "HEAD",
        ])
        assert rc == 0
        assert "no python files changed" in capsys.readouterr().out
