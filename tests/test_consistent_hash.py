"""Tests for the consistent-hash ring and chunk affinity policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures.consistent_hash import (
    ChunkAffinityPolicy,
    ConsistentHashRing,
    videos_touched_by,
)

NODES = [f"vcu{i}" for i in range(8)]


class TestRing:
    def test_lookup_is_deterministic(self):
        ring = ConsistentHashRing(NODES)
        assert ring.node_for("video-1") == ring.node_for("video-1")

    def test_all_nodes_reachable(self):
        ring = ConsistentHashRing(NODES)
        owners = {ring.node_for(f"key-{i}") for i in range(500)}
        assert owners == set(NODES)

    def test_distribution_roughly_uniform(self):
        ring = ConsistentHashRing(NODES, replicas=128)
        counts = {node: 0 for node in NODES}
        for i in range(4000):
            counts[ring.node_for(f"key-{i}")] += 1
        expected = 4000 / len(NODES)
        for count in counts.values():
            assert 0.5 * expected <= count <= 1.7 * expected

    def test_successors_distinct_and_ordered(self):
        ring = ConsistentHashRing(NODES)
        owners = ring.successors("video-9", count=3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.node_for("video-9")

    def test_successor_count_capped_at_ring_size(self):
        ring = ConsistentHashRing(["a", "b"])
        assert len(ring.successors("k", count=10)) == 2

    def test_minimal_disruption_on_node_removal(self):
        # The consistent-hashing property: removing one node only remaps
        # the keys it owned.
        ring = ConsistentHashRing(NODES)
        keys = [f"key-{i}" for i in range(600)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove_node("vcu3")
        after = {k: ring.node_for(k) for k in keys}
        for key in keys:
            if before[key] != "vcu3":
                assert after[key] == before[key]
            else:
                assert after[key] != "vcu3"

    def test_add_duplicate_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            ConsistentHashRing(["a"]).remove_node("b")

    def test_empty_ring_lookup_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing().node_for("k")

    @settings(max_examples=30, deadline=None)
    @given(st.text(min_size=1, max_size=20))
    def test_any_key_resolves(self, key):
        ring = ConsistentHashRing(NODES)
        assert ring.node_for(key) in NODES


class TestAffinityPolicy:
    def test_affinity_set_is_stable(self):
        policy = ChunkAffinityPolicy(ConsistentHashRing(NODES), affinity_size=3)
        assert policy.affinity_set("v1") == policy.affinity_set("v1")

    def test_chunks_confined_to_affinity_set(self):
        policy = ChunkAffinityPolicy(ConsistentHashRing(NODES), affinity_size=3)
        owners = {policy.preferred_vcu("v1", c) for c in range(50)}
        assert owners == set(policy.affinity_set("v1"))

    def test_round_robin_within_set(self):
        policy = ChunkAffinityPolicy(ConsistentHashRing(NODES), affinity_size=3)
        owners = [policy.preferred_vcu("v1", c) for c in range(6)]
        assert owners[:3] == owners[3:]
        assert len(set(owners[:3])) == 3

    def test_placement_order_respects_exclusions(self):
        policy = ChunkAffinityPolicy(ConsistentHashRing(NODES), affinity_size=3)
        excluded = {policy.preferred_vcu("v1", 0)}
        order = policy.placement_order("v1", 0, excluded=excluded)
        assert not excluded & set(order)
        assert len(order) == len(NODES) - 1

    def test_blast_radius_shrinks_with_affinity(self):
        # Spread placement touches nearly every video with any one VCU;
        # affinity placement confines the damage.
        videos = [f"v{i}" for i in range(40)]
        chunks = 12
        # Spread: chunk c of every video round-robins the whole fleet.
        spread = {
            v: [NODES[(i + c) % len(NODES)] for c in range(chunks)]
            for i, v in enumerate(videos)
        }
        policy = ChunkAffinityPolicy(ConsistentHashRing(NODES), affinity_size=2)
        confined = {
            v: [policy.preferred_vcu(v, c) for c in range(chunks)] for v in videos
        }
        bad = NODES[0]
        assert videos_touched_by(spread, bad) == len(videos)
        assert videos_touched_by(confined, bad) < 0.6 * len(videos)

    def test_bad_affinity_size(self):
        with pytest.raises(ValueError):
            ChunkAffinityPolicy(ConsistentHashRing(NODES), affinity_size=0)
