"""Unit and property tests for the entropy bit-cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.entropy import (
    SKIP_BITS,
    block_bits,
    exp_golomb_bits,
    mv_bits,
    zigzag_order,
)


def test_zero_block_costs_skip_bits():
    assert block_bits(np.zeros((8, 8), dtype=np.int64)) == SKIP_BITS


def test_exp_golomb_known_values():
    # |v|=1 -> code number 2 -> 2*floor(log2 2)+1 = 3 bits.
    assert exp_golomb_bits(np.array([1])) == 3.0
    assert exp_golomb_bits(np.array([-1])) == 3.0
    # |v|=2 -> code number 4 -> 5 bits.
    assert exp_golomb_bits(np.array([2])) == 5.0
    assert exp_golomb_bits(np.array([0])) == 0.0


def test_zigzag_order_visits_low_frequencies_first():
    order = zigzag_order(4)
    assert order[0] == 0  # DC first
    assert sorted(order.tolist()) == list(range(16))
    # The last scanned coefficient is the highest frequency.
    assert order[-1] == 15


def test_dc_only_block_cheaper_than_high_frequency_block():
    dc_only = np.zeros((8, 8), dtype=np.int64)
    dc_only[0, 0] = 5
    hf_only = np.zeros((8, 8), dtype=np.int64)
    hf_only[7, 7] = 5
    assert block_bits(dc_only) < block_bits(hf_only)


def test_entropy_efficiency_scales_cost():
    levels = np.ones((4, 4), dtype=np.int64)
    assert block_bits(levels, 0.5) == pytest.approx(block_bits(levels, 1.0) * 0.5)


def test_bad_efficiency_rejected():
    with pytest.raises(ValueError):
        block_bits(np.ones((2, 2), dtype=np.int64), 0.0)


def test_mv_bits_grow_with_magnitude():
    assert mv_bits(0, 0) < mv_bits(3, 4)


@settings(max_examples=30, deadline=None)
@given(arrays(np.int64, (8, 8), elements=st.integers(-64, 64)))
def test_block_bits_positive_and_monotone_in_magnitude(levels):
    bits = block_bits(levels)
    assert bits > 0
    # Doubling magnitudes never reduces cost.
    assert block_bits(levels * 2) >= bits
