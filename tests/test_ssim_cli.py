"""Tests for the SSIM metric and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.codec.encoder import encode_video
from repro.codec.profiles import LIBX264
from repro.metrics.ssim import sequence_ssim, ssim
from repro.video.frame import Frame, resolution


class TestSsim:
    def test_identical_is_one(self):
        plane = np.random.default_rng(0).uniform(0, 255, (16, 16))
        assert ssim(plane, plane) == pytest.approx(1.0)

    def test_noise_lowers_score(self):
        rng = np.random.default_rng(1)
        plane = rng.uniform(0, 255, (32, 32))
        noisy = plane + rng.normal(0, 25, plane.shape)
        assert ssim(plane, noisy) < 0.95

    def test_more_noise_is_worse(self):
        rng = np.random.default_rng(2)
        plane = rng.uniform(50, 200, (32, 32))
        little = plane + rng.normal(0, 5, plane.shape)
        lots = plane + rng.normal(0, 40, plane.shape)
        assert ssim(plane, lots) < ssim(plane, little)

    def test_luminance_shift_penalized(self):
        plane = np.random.default_rng(3).uniform(50, 200, (16, 16))
        shifted = plane + 40.0
        assert ssim(plane, shifted) < 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_tiny_plane_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)), window=8)

    def test_tracks_encoder_quality(self, tiny_video):
        """Lower QP (better PSNR) also means better SSIM."""
        res = tiny_video.nominal
        good = encode_video(tiny_video, LIBX264, qp=18)
        bad = encode_video(tiny_video, LIBX264, qp=46)
        good_frames = [Frame(f.recon.astype(np.float32), res, f.index) for f in good.frames]
        bad_frames = [Frame(f.recon.astype(np.float32), res, f.index) for f in bad.frames]
        assert sequence_ssim(tiny_video.frames, good_frames) > sequence_ssim(
            tiny_video.frames, bad_frames
        )

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            sequence_ssim([], [])


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "20xVCU" in out
        assert "14,931" in out

    def test_table2_scales(self, capsys):
        assert main(["table2", "--gpix", "306"]) == 0
        out = capsys.readouterr().out
        assert "Table 2 at 306" in out
        assert "110" in out  # 2x the 55-core total

    def test_balance(self, capsys):
        assert main(["balance"]) == 0
        out = capsys.readouterr().out
        assert "Gpixel/s per host" in out
        assert "realtime 30" in out

    def test_gaming(self, capsys):
        assert main(["gaming"]) == 0
        out = capsys.readouterr().out
        assert "meets" in out and "MISSES" in out

    def test_live(self, capsys):
        assert main(["live", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "software" in out and "VCU" in out

    def test_timeline_short(self, capsys):
        assert main(["timeline", "--months", "2", "--horizon", "20"]) == 0
        out = capsys.readouterr().out
        assert "Month" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
