"""Report/exporter tests: summarize, render, CLI, and reconciliation.

The key acceptance property: the counts a rendered report shows (and the
metrics snapshot exports) must reconcile exactly with the
:class:`ClusterStats` counters the cluster itself kept -- two independent
accounting paths over the same run.
"""

import os
import subprocess
import sys

from repro import obs
from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.failures import BackoffPolicy, FaultInjector
from repro.obs.report import TraceSummary, load, render, report_text, summarize
from repro.obs.trace import TraceSpan
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.video.frame import resolution


def _span(seq, kind, name, t0, t1=None, **attrs):
    return TraceSpan(seq=seq, kind=kind, name=name, t0=t0,
                     t1=t0 if t1 is None else t1, attrs=attrs)


class TestSummarize:
    def test_tallies_by_kind_and_pool(self):
        spans = [
            _span(0, "step", "s1", 0.0, 2.0, worker="w0", pool="vcu", outcome="ok"),
            _span(1, "step", "s2", 1.0, 2.0, worker="w1", pool="vcu",
                  outcome="corrupt_caught"),
            _span(2, "step", "s3", 0.0, 4.0, worker="cpu", pool="cpu", outcome="ok"),
            _span(3, "hang", "s2", 5.0, vcu="v1"),
            _span(4, "retry", "s2", 5.0, attempt=2, delay=1.5),
            _span(5, "fallback", "s2", 9.0),
            _span(6, "health", "w1", 5.0, **{"from": "healthy", "to": "suspect"}),
            _span(7, "graph", "v1", 0.0, 30.0, steps=3),
            _span(8, "sweep", "telemetry", 25.0, disabled=[]),
            _span(9, "repair", "h0", 30.0, 130.0, host="h0"),
            _span(10, "fw", "run_on_core", 1.0, 2.0, queue="q0"),
            _span(11, "host", "evict", 6.0, host="h0"),
        ]
        summary = summarize(spans)
        assert summary.spans == 12
        assert summary.horizon == 130.0
        assert summary.kinds["step"] == 3
        vcu = summary.pools["vcu"]
        assert vcu.steps == 2
        assert vcu.busy_seconds == 3.0
        assert vcu.workers == {"w0": 2.0, "w1": 1.0}
        assert summary.pools["cpu"].busy_seconds == 4.0
        assert summary.step_outcomes == {"ok": 2, "corrupt_caught": 1}
        assert summary.corrupt_caught == 1 and summary.corrupt_escaped == 0
        assert summary.hangs == 1 and summary.retries == 1
        assert summary.backoff_seconds == 1.5
        assert summary.fallbacks == 1
        assert summary.graphs_completed == 1
        assert summary.graph_latencies == [30.0]
        assert summary.health_timeline == [(5.0, "w1", "healthy", "suspect")]
        assert summary.host_events == [(6.0, "evict", "h0")]
        assert summary.sweeps == 1 and summary.repairs == 1
        assert summary.fw_dispatches == 1

    def test_accepts_raw_dicts_too(self):
        raw = [_span(0, "hang", "s", 1.0).to_dict()]
        assert summarize(raw).hangs == 1


class TestRender:
    def test_renders_core_sections(self):
        text = render(summarize([
            _span(0, "step", "s", 0.0, 1.0, worker="w0", pool="vcu", outcome="ok"),
            _span(1, "health", "w0", 2.0, **{"from": "healthy", "to": "suspect"}),
        ]))
        assert "Span counts by kind" in text
        assert "Per-pool utilization" in text
        assert "Resilience counters" in text
        assert "healthy -> suspect" in text

    def test_empty_trace_renders_placeholders(self):
        text = render(TraceSummary())
        assert "(no step spans)" in text
        assert "(no transitions)" in text

    def test_timeline_limit_elides_long_histories(self):
        spans = [
            _span(i, "health", f"w{i}", float(i),
                  **{"from": "healthy", "to": "suspect"})
            for i in range(10)
        ]
        text = render(summarize(spans), timeline_limit=3)
        assert "... 7 more transitions" in text


def _instrumented_run():
    """A small run with a wedged VCU and a corrupt VCU, under the hub."""
    with obs.installed() as hub:
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"rec-{i}") for i in range(3)]
        vcus[1].mark_corrupt()
        workers = [VcuWorker(v, golden_screening=False) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)],
            integrity_check_rate=1.0, seed=8,
            backoff=BackoffPolicy(base_seconds=1.0, jitter=0.0),
        )
        FaultInjector(sim, vcus).hang_at(1.0, vcus[0])
        graphs = [
            build_transcode_graph(f"rec-v{i}", resolution("720p"), 300, 30.0,
                                  bucket=PopularityBucket.WARM)
            for i in range(4)
        ]
        for g in graphs:
            cluster.submit(g)
        sim.run()
        assert all(g.completed_at is not None for g in graphs)
        return hub, cluster, sim.now


class TestReconciliation:
    def test_trace_summary_counts_match_cluster_stats(self, tmp_path):
        hub, cluster, _ = _instrumented_run()
        path = str(tmp_path / "run.jsonl")
        hub.trace.write_jsonl(path)
        summary = summarize(load(path))
        stats = cluster.stats
        assert summary.hangs == stats.hangs_detected
        assert summary.retries == stats.retries
        assert summary.corrupt_caught == stats.corrupt_caught
        assert summary.corrupt_escaped == stats.corrupt_escaped
        assert summary.fallbacks == stats.software_fallbacks
        assert summary.graphs_completed == stats.completed_graphs
        assert summary.backoff_seconds == round(stats.backoff_delay_seconds, 9)

    def test_metrics_snapshot_mirrors_cluster_stats(self):
        hub, cluster, now = _instrumented_run()
        snap = hub.metrics.snapshot(now=now)
        stats = cluster.stats
        for key, want in (
            ("cluster.hangs_detected", stats.hangs_detected),
            ("cluster.retries", stats.retries),
            ("cluster.corrupt_caught", stats.corrupt_caught),
            ("cluster.completed_steps", stats.completed_steps),
            ("cluster.completed_graphs", stats.completed_graphs),
            ("cluster.workers_quarantined", stats.workers_quarantined),
        ):
            assert snap[key] == want, key
        assert snap.get("cluster.corrupt_escaped", 0.0) == stats.corrupt_escaped
        # Step histograms conserve counts: every completed step was observed.
        assert (snap["cluster.step_seconds.vcu.count"]
                + snap.get("cluster.step_seconds.cpu.count", 0.0)
                + snap.get("cluster.step_seconds.sw.count", 0.0)
                >= stats.completed_steps)
        # Time-weighted utilization gauges exported and bounded.
        assert 0.0 <= snap["cluster.encoder_util.avg"] <= 1.0
        assert 0.0 <= snap["cluster.decoder_util.avg"] <= 1.0


class TestCli:
    def test_report_text_round_trip(self, tmp_path):
        hub, cluster, _ = _instrumented_run()
        path = str(tmp_path / "run.jsonl")
        hub.trace.write_jsonl(path)
        text = report_text(path)
        assert f"hangs detected      {cluster.stats.hangs_detected}" in text
        assert f"retries             {cluster.stats.retries} " in text

    def test_cli_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        hub, _, _ = _instrumented_run()
        path = str(tmp_path / "run.jsonl")
        hub.trace.write_jsonl(path)
        assert main(["report", path, "--timeline", "5"]) == 0
        out = capsys.readouterr().out
        assert "Trace report:" in out

    def test_report_path_imports_without_numpy(self):
        # The satellite requirement verbatim: building the CLI parser and
        # importing the whole obs/report stack must not pull in numpy.
        code = (
            "import sys\n"
            "import repro, repro.cli, repro.obs, repro.obs.report\n"
            "repro.cli.build_parser()\n"
            "assert 'numpy' not in sys.modules, 'numpy leaked into the CLI path'\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_lint_subcommand_runs_without_numpy(self):
        # `repro-bench lint` must stay as light as `report`: a full lint
        # of the analysis package itself (including parsing files that
        # *mention* numpy) must never import the numeric stack.
        code = (
            "import sys\n"
            "import repro.cli, repro.analysis\n"
            "rc = repro.cli.main(['lint', 'src/repro/analysis'])\n"
            "assert rc == 0, 'lint found violations in repro.analysis'\n"
            "assert 'numpy' not in sys.modules, 'numpy leaked into lint'\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
