"""Tests for cards, trays, hosts, and the pipeline efficiency model."""

import pytest

from repro.vcu.cores import (
    DEFAULT_PIPELINE,
    DecoderCoreModel,
    EncoderCoreModel,
    pipeline_efficiency,
)
from repro.vcu.host import VcuHost
from repro.vcu.spec import EncodingMode
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution


class TestHostHierarchy:
    def test_host_has_20_vcus(self):
        host = VcuHost()
        assert len(host.vcus) == 20
        assert len(host.trays) == 2
        assert all(len(t.cards) == 5 for t in host.trays)

    def test_vcu_ids_unique(self):
        host = VcuHost()
        ids = [v.vcu_id for v in host.vcus]
        assert len(set(ids)) == 20

    def test_disable_single_vcu_keeps_rest(self):
        # Independent power rails: one VCU can be disabled alone.
        host = VcuHost()
        victim = host.vcus[3].vcu_id
        host.disable_vcu(victim)
        assert len(host.healthy_vcus()) == 19

    def test_disable_unknown_vcu_raises(self):
        with pytest.raises(KeyError):
            VcuHost().disable_vcu("nope")

    def test_component_faults_mark_host_unusable(self):
        host = VcuHost()
        for _ in range(host.fault_budget):
            host.record_component_fault()
        assert host.unusable
        assert host.healthy_vcus() == []

    def test_telemetry_sweep_disables_faulty_vcus(self):
        host = VcuHost()
        host.vcus[0].telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
        disabled = host.sweep_telemetry()
        assert [v.vcu_id for v in disabled] == [host.vcus[0].vcu_id]
        assert host.vcus[0].disabled

    def test_numa_oblivious_pays_penalty(self):
        aware = VcuHost(numa_aware=True)
        oblivious = VcuHost(numa_aware=False)
        assert aware.throughput_multiplier == 1.0
        gain = aware.throughput_multiplier / oblivious.throughput_multiplier
        assert 1.16 <= gain <= 1.25  # the paper's 16-25% NUMA gains


class TestCoreModels:
    def test_encoder_realtime_fps_anchor(self):
        model = EncoderCoreModel()
        fps = model.realtime_fps("h264", 3840, 2160, EncodingMode.LOW_LATENCY_ONE_PASS)
        assert fps >= 60.0

    def test_encode_seconds_scale_linearly(self):
        model = EncoderCoreModel()
        one = model.encode_seconds(1e6, "h264", EncodingMode.OFFLINE_TWO_PASS)
        two = model.encode_seconds(2e6, "h264", EncodingMode.OFFLINE_TWO_PASS)
        assert two == pytest.approx(2 * one)

    def test_dram_bytes_compression_modes(self):
        model = EncoderCoreModel()
        typical = model.dram_bytes(1e6)
        worst = model.dram_bytes(1e6, worst_case=True)
        raw = model.dram_bytes(1e6, reference_compression=False)
        assert typical < worst < raw

    def test_decoder_bandwidth_anchor(self):
        # The decoder consistently uses 2.2 GiB/s while active.
        model = DecoderCoreModel()
        assert model.dram_bytes(1.0) == pytest.approx(2.2 * 1024**3)

    def test_negative_pixels_rejected(self):
        with pytest.raises(ValueError):
            EncoderCoreModel().encode_seconds(-1, "h264", EncodingMode.OFFLINE_TWO_PASS)


class TestPipelineModel:
    def test_fifos_recover_variability_loss(self):
        # Section 3.2: stages are decoupled with FIFOs because per-block
        # cost variability would otherwise stall the pipeline.
        rigid = pipeline_efficiency(fifo_depth=0)
        decoupled = pipeline_efficiency(fifo_depth=8)
        assert rigid < 0.70
        assert decoupled > 0.90
        assert pipeline_efficiency(fifo_depth=64) > decoupled

    def test_stage_names_match_figure4(self):
        names = [s.name for s in DEFAULT_PIPELINE]
        assert names[0].startswith("motion_estimation")
        assert len(names) == 3

    def test_negative_fifo_rejected(self):
        with pytest.raises(ValueError):
            pipeline_efficiency(fifo_depth=-1)
