"""Integration: a transcode expressed as firmware commands (Section 3.3.2).

A userspace transcode process maps one firmware queue and drives the VCU
with the four-command protocol: copy the chunk in, decode it, then (as
frames become available) scale/encode every ladder rung, copy results
out, and wait-for-done.  The test checks the co-design properties the
paper relies on: dependencies are honoured while independent commands run
out of order, multiple processes share the cores fairly, and the
modelled wall time matches the work placed on the binding core class.
"""

import pytest

from repro.sim import Simulator
from repro.vcu.firmware import CommandKind, FirmwareCommand, VcuFirmware, WorkQueue
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.video.frame import output_ladder, resolution


def mot_commands(frames: int = 30, source_name: str = "1080p"):
    """Build the MOT command graph for one chunk (decode -> encodes)."""
    spec = DEFAULT_VCU_SPEC
    source = resolution(source_name)
    copy_in = FirmwareCommand(CommandKind.COPY_TO_DEVICE, seconds=0.004)
    decode = FirmwareCommand(
        CommandKind.RUN_ON_CORE, core_class="decoder",
        seconds=source.pixels * frames / spec.decode_pixel_rate,
        depends_on=[copy_in],
    )
    encodes = []
    for rung in output_ladder(source):
        encodes.append(FirmwareCommand(
            CommandKind.RUN_ON_CORE, core_class="encoder",
            seconds=rung.pixels * frames
            / spec.encode_rate("vp9", EncodingMode.LOW_LATENCY_ONE_PASS),
            depends_on=[decode],
        ))
    copy_out = FirmwareCommand(CommandKind.COPY_FROM_DEVICE, seconds=0.002,
                               depends_on=list(encodes))
    done = FirmwareCommand(CommandKind.WAIT_FOR_DONE, depends_on=[copy_out])
    return [copy_in, decode] + encodes + [copy_out, done]


def submit_all(firmware, queue, commands):
    return [firmware.submit(queue, command) for command in commands]


def test_single_mot_completes_in_order():
    sim = Simulator()
    firmware = VcuFirmware(sim, encoder_cores=10, decoder_cores=3)
    queue = firmware.attach(WorkQueue("proc-0"))
    commands = mot_commands()
    events = submit_all(firmware, queue, commands)
    sim.run()
    assert all(event.fired for event in events)
    copy_in, decode = commands[0], commands[1]
    encodes = commands[2:-2]
    # Encodes started only after the decode they depend on...
    assert firmware.dispatched.index(decode) < min(
        firmware.dispatched.index(e) for e in encodes
    )
    # ...and they fanned out over distinct encoder cores.
    cores_used = {e.executed_on for e in encodes}
    assert len(cores_used) == len(encodes)


def test_wall_time_tracks_binding_core_class():
    sim = Simulator()
    firmware = VcuFirmware(sim, encoder_cores=10, decoder_cores=3)
    queue = firmware.attach(WorkQueue())
    commands = mot_commands()
    submit_all(firmware, queue, commands)
    finish = sim.run()
    decode_seconds = commands[1].seconds
    longest_encode = max(c.seconds for c in commands[2:-2])
    expected = 0.004 + decode_seconds + longest_encode + 0.002
    assert finish == pytest.approx(expected, rel=0.01)


def test_two_processes_share_the_vcu():
    # Two process-per-transcode queues multiplex onto one VCU; both make
    # progress and total time is far below serial execution.
    sim = Simulator()
    firmware = VcuFirmware(sim, encoder_cores=10, decoder_cores=3)
    queues = [firmware.attach(WorkQueue(f"proc-{i}")) for i in range(2)]
    all_events = []
    for queue in queues:
        all_events.extend(submit_all(firmware, queue, mot_commands()))
    finish = sim.run()
    assert all(event.fired for event in all_events)

    serial_sim = Simulator()
    serial_fw = VcuFirmware(serial_sim, encoder_cores=10, decoder_cores=3)
    serial_queue = serial_fw.attach(WorkQueue())
    submit_all(serial_fw, serial_queue, mot_commands())
    serial_finish = serial_sim.run()
    submit_second = serial_sim.now
    submit_all(serial_fw, serial_queue, mot_commands())
    serial_total = serial_sim.run()
    assert finish < serial_total * 0.9


def test_out_of_order_across_independent_chunks():
    # Chunk B's decode starts while chunk A's encodes are still running:
    # the firmware honours data dependencies, not submission order.
    sim = Simulator()
    firmware = VcuFirmware(sim, encoder_cores=2, decoder_cores=1)
    queue = firmware.attach(WorkQueue())
    chunk_a = mot_commands(frames=30)
    chunk_b = mot_commands(frames=30)
    submit_all(firmware, queue, chunk_a)
    submit_all(firmware, queue, chunk_b)
    sim.run()
    decode_b = chunk_b[1]
    last_encode_a = chunk_a[-3]
    assert firmware.dispatched.index(decode_b) < firmware.dispatched.index(
        last_encode_a
    )
