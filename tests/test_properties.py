"""Property-based tests (hypothesis) on core data structures and invariants.

These complement the unit suites: instead of fixed cases they explore the
input space of the codec, the metrics, the resources, and the hash ring,
checking the invariants the rest of the system builds on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.codec.decoder import decode_chunk
from repro.codec.encoder import encode_video
from repro.codec.profiles import LIBVPX, LIBX264
from repro.failures.consistent_hash import ConsistentHashRing
from repro.metrics.quality import RDPoint, bd_rate
from repro.sim.resources import MultiResource
from repro.video.content import ContentSpec, SyntheticVideo
from repro.video.frame import output_ladder, resolution

# --------------------------------------------------------------------- #
# Codec invariants


content_specs = st.builds(
    ContentSpec,
    name=st.just("prop"),
    resolution_name=st.sampled_from(["360p", "480p", "720p"]),
    fps=st.sampled_from([24.0, 30.0]),
    motion=st.floats(0.0, 3.0),
    detail=st.floats(0.0, 1.0),
    noise=st.floats(0.0, 4.0),
    sprites=st.integers(1, 5),
)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=content_specs, seed=st.integers(0, 1000), qp=st.integers(12, 48))
def test_codec_roundtrip_for_arbitrary_content(spec, seed, qp):
    """Whatever the content, encode -> decode is bit-exact and bits > 0."""
    video = SyntheticVideo(spec, seed=seed, proxy_height=27).video(3)
    chunk = encode_video(video, LIBX264, qp=float(qp))
    assert chunk.total_bits > 0
    planes = decode_chunk(chunk, LIBX264)
    for plane, frame in zip(planes, chunk.frames):
        np.testing.assert_array_equal(plane, frame.recon)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=content_specs, seed=st.integers(0, 1000))
def test_codec_quality_monotone_in_qp(spec, seed):
    """Across arbitrary content, lower QP never yields lower PSNR."""
    video = SyntheticVideo(spec, seed=seed, proxy_height=27).video(3)
    low = encode_video(video, LIBVPX, qp=16)
    high = encode_video(video, LIBVPX, qp=46)
    assert low.psnr >= high.psnr - 1e-6
    assert low.total_bits >= high.total_bits * 0.9


# --------------------------------------------------------------------- #
# BD-rate invariances


def _curve(rates, psnr_offset=0.0, rate_scale=1.0):
    return [
        RDPoint(bitrate=r * rate_scale, psnr=10 * np.log2(r / 1e6) + 35 + psnr_offset)
        for r in rates
    ]


RATES = (0.5e6, 1e6, 2e6, 4e6, 8e6)


@settings(max_examples=40, deadline=None)
@given(scale=st.floats(0.3, 3.0))
def test_bd_rate_recovers_pure_rate_scaling(scale):
    reference = _curve(RATES)
    test = _curve(RATES, rate_scale=scale)
    assert bd_rate(reference, test) == pytest.approx((scale - 1) * 100, abs=1.0)


@settings(max_examples=40, deadline=None)
@given(scale=st.floats(0.4, 2.5), units=st.floats(0.01, 100.0))
def test_bd_rate_invariant_to_bitrate_units(scale, units):
    """Expressing both curves in different units changes nothing."""
    reference, test = _curve(RATES), _curve(RATES, rate_scale=scale)
    scaled_ref = [RDPoint(p.bitrate * units, p.psnr) for p in reference]
    scaled_test = [RDPoint(p.bitrate * units, p.psnr) for p in test]
    assert bd_rate(scaled_ref, scaled_test) == pytest.approx(
        bd_rate(reference, test), abs=0.5
    )


# --------------------------------------------------------------------- #
# Output ladders


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(["240p", "480p", "1080p", "2160p", "4320p"]))
def test_output_ladder_invariants(name):
    source = resolution(name)
    ladder = output_ladder(source)
    assert ladder[0] == source  # top rung is the source itself
    pixels = [r.pixels for r in ladder]
    assert pixels == sorted(pixels, reverse=True)
    # Footnote 2's geometric-series property: sub-rungs sum below the top.
    assert sum(pixels[1:]) < pixels[0]


# --------------------------------------------------------------------- #
# Consistent hash ring: churn never breaks the ring's invariants


class RingMachine(RuleBasedStateMachine):
    """Stateful test: add/remove nodes, always resolve keys correctly."""

    def __init__(self):
        super().__init__()
        self.ring = ConsistentHashRing(["seed-node"])
        self.members = {"seed-node"}
        self.counter = 0

    @rule()
    def add_node(self):
        self.counter += 1
        node = f"node-{self.counter}"
        self.ring.add_node(node)
        self.members.add(node)

    @precondition(lambda self: len(self.members) > 1)
    @rule(data=st.data())
    def remove_node(self, data):
        node = data.draw(st.sampled_from(sorted(self.members)))
        self.ring.remove_node(node)
        self.members.discard(node)

    @rule(key=st.text(min_size=1, max_size=12))
    def lookup(self, key):
        owner = self.ring.node_for(key)
        assert owner in self.members
        assert self.ring.node_for(key) == owner  # deterministic

    @invariant()
    def ring_tracks_membership(self):
        assert self.ring.nodes == self.members


TestRingStateful = RingMachine.TestCase
TestRingStateful.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)


# --------------------------------------------------------------------- #
# MultiResource: conservation under arbitrary acquire/release sequences


class ResourceMachine(RuleBasedStateMachine):
    """Stateful test: availability never exceeds capacity or goes negative."""

    def __init__(self):
        super().__init__()
        self.resource = MultiResource({"enc": 100.0, "dec": 30.0})
        self.held = []

    @rule(enc=st.floats(0, 60), dec=st.floats(0, 20))
    def acquire(self, enc, dec):
        request = {"enc": enc, "dec": dec}
        fits_before = self.resource.fits(request)
        acquired = self.resource.acquire(request)
        assert acquired == fits_before
        if acquired:
            self.held.append(request)

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def release(self, data):
        index = data.draw(st.integers(0, len(self.held) - 1))
        self.resource.release(self.held.pop(index))

    @invariant()
    def conservation(self):
        for dim, cap in self.resource.capacity.items():
            available = self.resource.available[dim]
            held = sum(r.get(dim, 0.0) for r in self.held)
            assert -1e-6 <= available <= cap + 1e-6
            assert available + held == pytest.approx(cap, abs=1e-5)


TestResourceStateful = ResourceMachine.TestCase
TestResourceStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
