"""Tests for bin-packing vs single-slot scheduling and pools."""

import pytest

from repro.cluster.pool import Pool, PoolKey, Priority, UseCase, rebalance_pools
from repro.cluster.scheduler import BinPackingScheduler, SingleSlotScheduler
from repro.cluster.worker import VcuWorker
from repro.sim.rng import make_rng
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC


def make_workers(count=3):
    return [VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"s-vcu{i}")) for i in range(count)]


class TestBinPacking:
    def test_figure6_example(self):
        # Worker 0 has no decode millicores left; the request lands on
        # Worker 1 (first fit by worker number); Worker N stays idle.
        workers = make_workers(3)
        assert workers[0].try_admit({"millidecode": 3000.0})  # exhaust decode
        scheduler = BinPackingScheduler(workers)
        request = {"millidecode": 500.0, "milliencode": 3750.0}
        placed = scheduler.place(request)
        assert placed is workers[1]
        assert workers[2].is_idle()

    def test_atomic_multidimensional_fit(self):
        workers = make_workers(1)
        scheduler = BinPackingScheduler(workers)
        assert scheduler.place({"milliencode": 9000.0}) is workers[0]
        # encode nearly full: a request needing encode+decode must fail
        # even though decode alone would fit.
        assert scheduler.place({"milliencode": 2000.0, "millidecode": 100.0}) is None
        assert scheduler.rejections == 1

    def test_exclusion_list_respected(self):
        workers = make_workers(2)
        scheduler = BinPackingScheduler(workers)
        placed = scheduler.place({"milliencode": 100.0}, excluded={workers[0].name})
        assert placed is workers[1]

    def test_disabled_worker_skipped(self):
        workers = make_workers(2)
        workers[0].vcu.disable()
        scheduler = BinPackingScheduler(workers)
        assert scheduler.place({"milliencode": 1.0}) is workers[1]

    def test_add_remove_worker(self):
        workers = make_workers(1)
        scheduler = BinPackingScheduler([])
        assert scheduler.place({"milliencode": 1.0}) is None
        scheduler.add_worker(workers[0])
        assert scheduler.place({"milliencode": 1.0}) is workers[0]
        scheduler.remove_worker(workers[0])
        assert scheduler.workers == []


class TestSingleSlot:
    def test_slot_exhaustion_strands_capacity(self):
        # The legacy model: tiny steps burn whole slots, so a worker
        # "fills up" while its physical resources are mostly idle.
        workers = make_workers(1)
        scheduler = SingleSlotScheduler(workers, slots_per_worker=2)
        tiny = {"milliencode": 100.0}
        assert scheduler.place(tiny) is workers[0]
        assert scheduler.place(tiny) is workers[0]
        assert scheduler.place(tiny) is None  # slots gone, capacity stranded
        assert workers[0].vcu.encoder_utilization() < 0.05

    def test_release_slot_restores(self):
        workers = make_workers(1)
        scheduler = SingleSlotScheduler(workers, slots_per_worker=1)
        request = {"milliencode": 100.0}
        worker = scheduler.place(request)
        assert scheduler.place(request) is None
        worker.release(request)
        scheduler.release_slot(worker)
        assert scheduler.place(request) is worker

    def test_validates_slots(self):
        with pytest.raises(ValueError):
            SingleSlotScheduler(make_workers(1), slots_per_worker=0)


class TestIndexedScanEquivalence:
    """The indexed ``place`` must reproduce the linear scan exactly.

    Replays one pseudo-random placement/release stream through two
    identical fleets -- one driven by the pre-index ``place_scan``, one
    by the indexed ``place`` -- and asserts the placement *sequences*
    match worker for worker.  Two fleets are required because both paths
    mutate worker resources as they admit."""

    REQUEST_SHAPES = [
        {"millidecode": 250.0, "milliencode": 1200.0, "dram_bytes": 40e6},
        {"millidecode": 500.0, "milliencode": 3750.0, "dram_bytes": 160e6},
        {"millidecode": 120.0, "milliencode": 600.0, "dram_bytes": 20e6},
        {"millidecode": 1000.0, "milliencode": 7500.0, "dram_bytes": 330e6},
    ]

    def _replay(self, place_attr, steps, workers_n=7, seed=123):
        workers = [
            VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"eq-vcu{i}"))
            for i in range(workers_n)
        ]
        scheduler = BinPackingScheduler(workers)
        place = getattr(scheduler, place_attr)
        rng = make_rng(seed)
        in_flight = []
        trace = []
        for _ in range(steps):
            if in_flight and rng.random() < 0.35:
                worker, request = in_flight.pop(int(rng.integers(len(in_flight))))
                scheduler.release(worker, request)
                trace.append(("release", worker.name))
                continue
            request = self.REQUEST_SHAPES[int(rng.integers(len(self.REQUEST_SHAPES)))]
            worker = place(request)
            if worker is None:
                trace.append(("reject", None))
            else:
                in_flight.append((worker, request))
                trace.append(("place", worker.name))
        return trace, scheduler

    def test_indexed_matches_scan_on_replayed_stream(self):
        for seed in (1, 22, 333):
            scan_trace, scan_sched = self._replay("place_scan", 600, seed=seed)
            fast_trace, fast_sched = self._replay("place", 600, seed=seed)
            assert fast_trace == scan_trace
            assert fast_sched.rejections == scan_sched.rejections
            assert fast_sched.placements == scan_sched.placements

    def test_indexed_matches_scan_with_preference_and_exclusion(self):
        for seed in (7, 70):
            traces = []
            for place_attr in ("place_scan", "place"):
                workers = [
                    VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"pe-vcu{i}"))
                    for i in range(5)
                ]
                scheduler = BinPackingScheduler(workers)
                place = getattr(scheduler, place_attr)
                rng = make_rng(seed)
                names = [w.name for w in workers]
                trace = []
                in_flight = []
                for _ in range(300):
                    if in_flight and rng.random() < 0.4:
                        worker, request = in_flight.pop(
                            int(rng.integers(len(in_flight)))
                        )
                        scheduler.release(worker, request)
                        trace.append(("release", worker.name))
                        continue
                    request = self.REQUEST_SHAPES[
                        int(rng.integers(len(self.REQUEST_SHAPES)))
                    ]
                    preference = (
                        [names[i] for i in rng.choice(5, size=2, replace=False)]
                        if rng.random() < 0.5 else None
                    )
                    excluded = (
                        {names[int(rng.integers(len(names)))]}
                        if rng.random() < 0.3 else frozenset()
                    )
                    worker = place(request, preference=preference, excluded=excluded)
                    if worker is None:
                        trace.append(("reject", None))
                    else:
                        in_flight.append((worker, request))
                        trace.append(("place", worker.name))
                traces.append(trace)
            assert traces[0] == traces[1]


class TestPools:
    def test_rebalance_moves_idle_workers_to_pressure(self):
        upload = Pool(PoolKey(Priority.NORMAL, UseCase.UPLOAD))
        live = Pool(PoolKey(Priority.CRITICAL, UseCase.LIVE))
        upload.workers = make_workers(3)
        live.pending_steps = 10
        moved = rebalance_pools({upload.key: upload, live.key: live})
        assert moved > 0
        assert len(live.workers) == moved
        assert all(w.pool_key == live.key for w in live.workers)

    def test_no_move_when_donor_busy(self):
        upload = Pool(PoolKey(Priority.NORMAL, UseCase.UPLOAD))
        live = Pool(PoolKey(Priority.CRITICAL, UseCase.LIVE))
        upload.workers = make_workers(1)
        upload.pending_steps = 5  # donor has its own backlog
        live.pending_steps = 10
        moved = rebalance_pools({upload.key: upload, live.key: live})
        assert moved == 0

    def test_demand_pressure(self):
        pool = Pool(PoolKey(Priority.BATCH, UseCase.UPLOAD))
        assert pool.demand_pressure() == 0.0
        pool.pending_steps = 4
        assert pool.demand_pressure() == float("inf")
        pool.workers = make_workers(2)
        assert pool.demand_pressure() == 2.0
