"""Fixture-based tests for every rule in ``repro.analysis.rules``.

Each rule gets (at least) one true-positive bad snippet with the finding
asserted by rule-id + line, one clean snippet, and one pragma-suppressed
variant of the bad snippet, per the PR-4 acceptance criteria.
"""

import textwrap

from repro.analysis import analyze_source

SRC_PATH = "src/repro/cluster/fake.py"


def lint(source, path=SRC_PATH):
    findings, suppressed = analyze_source(textwrap.dedent(source), path)
    return findings, suppressed


def lines(findings, rule):
    return [f.line for f in findings if f.rule == rule]


# --------------------------------------------------------------------- #
# determinism


class TestDeterminismRule:
    def test_flags_wall_clock_random_module_and_np_random(self):
        findings, _ = lint(
            """\
            import time
            import random
            import numpy as np
            from datetime import datetime


            def stamp():
                t = time.time()
                r = random.random()
                rng = np.random.default_rng()
                np.random.seed(7)
                d = datetime.now()
                return t, r, rng, d
            """
        )
        assert lines(findings, "determinism") == [2, 8, 9, 10, 11, 12]

    def test_flags_from_imports_of_banned_callables(self):
        findings, _ = lint(
            """\
            from time import perf_counter
            from numpy.random import default_rng


            def sample():
                return default_rng().normal() + perf_counter()
            """
        )
        assert lines(findings, "determinism") == [6, 6]

    def test_clean_generator_passing_style(self):
        findings, _ = lint(
            """\
            import numpy as np

            from repro.sim.rng import make_rng, split_rng


            def arrivals(rng: np.random.Generator, count: int):
                return rng.exponential(1.0, size=count)


            def build(seed):
                return arrivals(split_rng(seed, "arrivals"), 10)
            """
        )
        assert findings == []

    def test_rng_module_itself_is_exempt(self):
        source = """\
            import numpy as np


            def make_rng(seed):
                return np.random.default_rng(seed)
            """
        findings, _ = lint(source, path="src/repro/sim/rng.py")
        assert findings == []
        findings, _ = lint(source, path=SRC_PATH)
        assert lines(findings, "determinism") == [5]

    def test_tests_may_seed_their_own_generators_but_not_wall_clock(self):
        source = """\
            import time

            import numpy as np


            def test_thing():
                rng = np.random.default_rng(0)
                assert rng.random() < 1.0
                assert time.time() > 0
            """
        findings, _ = lint(source, path="tests/test_fake.py")
        assert lines(findings, "determinism") == [9]  # wall clock still banned

    def test_pragma_suppresses_line(self):
        findings, suppressed = lint(
            """\
            import time


            def measure(fn):
                t0 = time.perf_counter()  # lint: allow=determinism -- harness
                fn()
                return time.perf_counter() - t0  # lint: allow=determinism -- harness
            """
        )
        assert findings == []
        assert suppressed == 2


# --------------------------------------------------------------------- #
# obs-hook


class TestObsHookRule:
    def test_flags_module_level_capture(self):
        findings, _ = lint(
            """\
            from repro import obs

            HUB = obs.active()
            """
        )
        assert lines(findings, "obs-hook") == [3]

    def test_flags_chained_use_without_check(self):
        findings, _ = lint(
            """\
            from repro import obs


            def emit(name):
                obs.active().count(name)
            """
        )
        assert lines(findings, "obs-hook") == [5]

    def test_flags_unchecked_local_use(self):
        findings, _ = lint(
            """\
            from repro import obs


            def emit(name):
                hub = obs.active()
                hub.count(name)
            """
        )
        assert lines(findings, "obs-hook") == [6]

    def test_flags_attribute_capture(self):
        findings, _ = lint(
            """\
            from repro import obs


            class Worker:
                def __init__(self):
                    self.hub = obs.active()
            """
        )
        assert lines(findings, "obs-hook") == [6]

    def test_clean_guarded_hook(self):
        findings, _ = lint(
            """\
            from repro import obs


            def emit(name):
                hub = obs.active()
                if hub is not None:
                    hub.count(name)
            """
        )
        assert findings == []

    def test_comparisons_alone_are_not_use(self):
        findings, _ = lint(
            """\
            from repro import obs


            def installed():
                return obs.active() is not None
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            """\
            from repro import obs


            def emit(name):
                obs.active().count(name)  # lint: allow=obs-hook -- test shim
            """
        )
        assert findings == []
        assert suppressed == 1


# --------------------------------------------------------------------- #
# sim-yield


class TestSimYieldRule:
    def test_flags_bad_yield_and_blocking_io(self):
        findings, _ = lint(
            """\
            import time


            def step(sim):
                def worker():
                    time.sleep(0.1)
                    yield "done"
                sim.process(worker(), name="w")
            """
        )
        assert lines(findings, "sim-yield") == [6, 7]

    def test_clean_sanctioned_yields(self):
        findings, _ = lint(
            """\
            def step(sim, device):
                def worker():
                    yield 1.5
                    done = sim.event()
                    yield done
                    yield sim.timeout(2.0)
                sim.process(worker(), name="w")
            """
        )
        assert findings == []

    def test_non_process_generators_are_ignored(self):
        findings, _ = lint(
            """\
            def chunks(items):
                for item in items:
                    yield str(item)
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            """\
            def step(sim):
                def worker():
                    yield "bad"  # lint: allow=sim-yield -- negative test
                sim.process(worker())
            """
        )
        assert findings == []
        assert suppressed == 1


# --------------------------------------------------------------------- #
# ordered-iteration


class TestOrderedIterationRule:
    def test_flags_set_iteration_forms(self):
        findings, _ = lint(
            """\
            def place(workers, excluded_ids):
                pending = set(workers)
                for worker in pending:
                    print(worker)
                for worker_id in {w.name for w in workers}:
                    print(worker_id)
                return [w for w in set(workers)]
            """
        )
        assert lines(findings, "ordered-iteration") == [3, 5, 7]

    def test_flags_set_attribute_iteration(self):
        findings, _ = lint(
            """\
            class Tracker:
                def __init__(self):
                    self._done = set()

                def drain(self):
                    for item in self._done:
                        print(item)
            """
        )
        assert lines(findings, "ordered-iteration") == [6]

    def test_flags_dict_view_algebra(self):
        findings, _ = lint(
            """\
            def diff(before, after):
                for key in before.keys() - after.keys():
                    print(key)
            """
        )
        assert lines(findings, "ordered-iteration") == [2]

    def test_clean_sorted_and_membership(self):
        findings, _ = lint(
            """\
            def place(workers):
                excluded = set()
                for worker in sorted(set(w.name for w in workers)):
                    if worker in excluded:
                        continue
                    excluded.add(worker)
                return excluded
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            """\
            def drain(pending):
                keep = set(pending)
                for item in keep:  # lint: allow=ordered-iteration -- commutative sum
                    print(item)
            """
        )
        assert findings == []
        assert suppressed == 1


# --------------------------------------------------------------------- #
# float-parity


class TestFloatParityRule:
    PARITY_PATH = "tests/test_codec_kernels.py"

    def test_flags_tolerance_comparisons_in_parity_files(self):
        findings, _ = lint(
            """\
            import numpy as np
            import pytest


            def test_parity(fast, reference):
                assert np.allclose(fast, reference)
                np.testing.assert_allclose(fast, reference)
                assert (fast == reference).all()
                assert fast.sum() == pytest.approx(reference.sum())
            """,
            path=self.PARITY_PATH,
        )
        assert lines(findings, "float-parity") == [6, 7, 8, 9]

    def test_array_equal_is_clean(self):
        findings, _ = lint(
            """\
            import numpy as np


            def test_parity(fast, reference):
                assert np.array_equal(fast, reference)
            """,
            path=self.PARITY_PATH,
        )
        assert findings == []

    def test_non_parity_files_may_use_tolerances(self):
        findings, _ = lint(
            """\
            import numpy as np


            def test_psnr(a, b):
                assert np.allclose(a, b, rtol=0.01)
            """,
            path="tests/test_metrics_fake.py",
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            """\
            import numpy as np


            def test_setup_noise(a, b):
                assert np.allclose(a, b)  # lint: allow=float-parity -- fixture sanity, not parity
            """,
            path=self.PARITY_PATH,
        )
        assert findings == []
        assert suppressed == 1


# --------------------------------------------------------------------- #
# hygiene


class TestHygieneRule:
    def test_flags_mutable_defaults_and_bare_except(self):
        findings, _ = lint(
            """\
            def enqueue(step, queue=[], meta={}):
                try:
                    queue.append(step)
                except:
                    pass
                return queue, meta
            """
        )
        assert lines(findings, "hygiene") == [1, 1, 4]

    def test_flags_mutable_call_defaults_incl_kwonly(self):
        findings, _ = lint(
            """\
            import collections


            def build(pool=set(), *, index=collections.defaultdict(list)):
                return pool, index
            """
        )
        assert lines(findings, "hygiene") == [4, 4]

    def test_clean_none_defaults_and_typed_except(self):
        findings, _ = lint(
            """\
            def enqueue(step, queue=None):
                if queue is None:
                    queue = []
                try:
                    queue.append(step)
                except ValueError:
                    raise
                return queue
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            """\
            def memo(cache={}):  # lint: allow=hygiene -- intentional shared cache
                return cache
            """
        )
        assert findings == []
        assert suppressed == 1
