"""Tests for the firmware command queues and round-robin core dispatch."""

import pytest

from repro.sim import Simulator
from repro.vcu.firmware import CommandKind, FirmwareCommand, VcuFirmware, WorkQueue


def run_cmd(kind=CommandKind.RUN_ON_CORE, seconds=1.0, core_class="encoder", deps=()):
    return FirmwareCommand(
        kind=kind, seconds=seconds, core_class=core_class, depends_on=list(deps)
    )


def test_run_on_core_completes():
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=2)
    queue = fw.attach(WorkQueue("p0"))
    command = run_cmd(seconds=2.0)
    done = fw.submit(queue, command)
    sim.run()
    assert done.fired
    assert sim.now == pytest.approx(2.0)
    assert command.executed_on is not None


def test_stateless_dispatch_uses_any_idle_core():
    # run-on-core does not name a core; two concurrent commands land on
    # different cores and finish in parallel.
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=2)
    queue = fw.attach(WorkQueue())
    a, b = run_cmd(seconds=3.0), run_cmd(seconds=3.0)
    fw.submit(queue, a)
    fw.submit(queue, b)
    sim.run()
    assert sim.now == pytest.approx(3.0)
    assert {a.executed_on, b.executed_on} == {0, 1}


def test_work_queues_when_cores_busy():
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=1)
    queue = fw.attach(WorkQueue())
    fw.submit(queue, run_cmd(seconds=2.0))
    fw.submit(queue, run_cmd(seconds=2.0))
    sim.run()
    assert sim.now == pytest.approx(4.0)


def test_round_robin_fairness_across_queues():
    # With one core and two queues each holding two commands, service
    # must alternate: q0, q1, q0, q1.
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=1)
    q0, q1 = fw.attach(WorkQueue("q0")), fw.attach(WorkQueue("q1"))
    commands = {
        "a0": run_cmd(seconds=1.0), "a1": run_cmd(seconds=1.0),
        "b0": run_cmd(seconds=1.0), "b1": run_cmd(seconds=1.0),
    }
    fw.submit(q0, commands["a0"])
    fw.submit(q0, commands["a1"])
    fw.submit(q1, commands["b0"])
    fw.submit(q1, commands["b1"])
    sim.run()
    order = [cmd for cmd in fw.dispatched]
    assert order == [commands["a0"], commands["b0"], commands["a1"], commands["b1"]]


def test_dependencies_allow_out_of_order_start():
    # A later command with no dependencies starts before an earlier one
    # whose dependency has not fired (data-dependency graph semantics).
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=1, decoder_cores=1)
    queue = fw.attach(WorkQueue())
    decode = run_cmd(seconds=5.0, core_class="decoder")
    encode_dependent = run_cmd(seconds=1.0, deps=[decode])
    independent = run_cmd(seconds=1.0)
    fw.submit(queue, decode)
    fw.submit(queue, encode_dependent)
    fw.submit(queue, independent)
    sim.run()
    assert fw.dispatched.index(independent) < fw.dispatched.index(encode_dependent)
    assert sim.now == pytest.approx(6.0)  # decode 5 + dependent encode 1


def test_copy_commands_use_copy_engine():
    sim = Simulator()
    fw = VcuFirmware(sim, copy_engines=1)
    queue = fw.attach(WorkQueue())
    h2d = run_cmd(kind=CommandKind.COPY_TO_DEVICE, seconds=0.5)
    d2h = run_cmd(kind=CommandKind.COPY_FROM_DEVICE, seconds=0.5)
    fw.submit(queue, h2d)
    fw.submit(queue, d2h)
    sim.run()
    assert sim.now == pytest.approx(1.0)  # serialized on the single engine


def test_wait_for_done_barrier():
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=2)
    queue = fw.attach(WorkQueue())
    a = run_cmd(seconds=2.0)
    b = run_cmd(seconds=4.0)
    fw.submit(queue, a)
    fw.submit(queue, b)
    barrier = fw.submit(queue, run_cmd(kind=CommandKind.WAIT_FOR_DONE, deps=[a, b]))
    fired_at = []

    def wait():
        yield barrier
        fired_at.append(sim.now)

    sim.process(wait())
    sim.run()
    assert fired_at == [pytest.approx(4.0)]


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        FirmwareCommand(kind=CommandKind.RUN_ON_CORE, seconds=-1.0)


def test_work_conservation():
    # No core idles while compatible work is queued: 4 one-second
    # commands on 2 cores take exactly 2 seconds.
    sim = Simulator()
    fw = VcuFirmware(sim, encoder_cores=2)
    queue = fw.attach(WorkQueue())
    for _ in range(4):
        fw.submit(queue, run_cmd(seconds=1.0))
    sim.run()
    assert sim.now == pytest.approx(2.0)
    assert fw.idle_cores("encoder") == 2
