"""Correlated-outage chaos campaign: conservation under any arm.

One representative arm runs end to end and is inspected in detail; a
hypothesis sweep then drives randomized (blast radius, repair capacity,
horizon) arms through the same engine and asserts the two campaign
invariants -- job conservation and exact availability bookkeeping --
hold for every one of them, not just the catalog's declared sweep.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.control.catalog import CHAOS_SEED
from repro.control.chaos import (
    ChaosCampaignConfig,
    run_chaos_campaign,
    scorecard_keys,
)


class TestConfigValidation:
    def test_blast_must_leave_survivors(self):
        with pytest.raises(ValueError):
            ChaosCampaignConfig(hosts=4, blast_hosts=4)

    def test_blast_storm_outage_sets_must_not_overlap(self):
        with pytest.raises(ValueError):
            ChaosCampaignConfig(hosts=4, blast_hosts=2, outage_hosts=2)

    def test_repair_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            ChaosCampaignConfig(repair_cap=0)


class TestRepresentativeArm:
    @pytest.fixture(scope="class")
    def result(self):
        config = ChaosCampaignConfig(
            horizon_seconds=360.0, blast_hosts=2, repair_cap=1
        )
        return run_chaos_campaign(config, seed=CHAOS_SEED)

    def test_every_job_completes(self, result):
        card = result.scorecard
        assert card["conservation.ok"] is True
        assert card["jobs.completed"] == result.submitted > 0

    def test_blast_disables_and_repair_restores(self, result):
        card = result.scorecard
        # The ECC storm crosses the disable threshold on every blasted
        # VCU; the capped repair queue brings hosts back one at a time.
        assert card["fleet.disabled_by_sweeps"] >= (
            result.config.blast_hosts * result.config.vcus_per_host
        )
        assert card["sweeper.repairs_started"] > 0
        assert card["repair.hosts_repaired"] > 0

    def test_hang_storm_exercises_watchdog(self, result):
        card = result.scorecard
        assert card["cluster.hangs"] > 0
        assert card["cluster.retries"] > 0
        assert card["cluster.workers_quarantined"] > 0

    def test_availability_counter_is_exact(self, result):
        assert result.scorecard["availability.exact"] is True

    def test_scorecard_keys_are_exact(self, result):
        assert tuple(sorted(result.scorecard)) == scorecard_keys()

    def test_determinism_same_seed_same_scorecard(self, result):
        config = ChaosCampaignConfig(
            horizon_seconds=360.0, blast_hosts=2, repair_cap=1
        )
        again = run_chaos_campaign(config, seed=CHAOS_SEED)
        assert again.scorecard == result.scorecard


class TestConservationProperty:
    @given(
        blast_hosts=st.integers(min_value=1, max_value=4),
        repair_cap=st.integers(min_value=1, max_value=4),
        horizon=st.sampled_from([120.0, 180.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_conservation_holds_for_any_arm(
        self, blast_hosts, repair_cap, horizon, seed
    ):
        config = ChaosCampaignConfig(
            horizon_seconds=horizon,
            hosts=7,
            blast_hosts=blast_hosts,
            repair_cap=repair_cap,
            outage_hosts=min(2, 6 - blast_hosts),
        )
        result = run_chaos_campaign(config, seed=seed)
        card = result.scorecard
        assert card["conservation.ok"] is True
        assert card["jobs.completed"] == result.submitted
        assert card["availability.exact"] is True
