"""The platform-day experiment as registered in the default registry.

Locks the contract the CI smoke job relies on: the experiment exists
with both arms, its smoke manifest is byte-identical at any ``--jobs``
(the driver-level determinism guarantee), and every run's scorecard
carries the exact key set from :func:`scorecard_keys`.
"""

from __future__ import annotations

import pytest

from repro.control.scenario import scorecard_keys
from repro.runner.executor import run_experiments
from repro.runner.manifest import build_manifest, manifest_text
from repro.runner import default_registry

NAME = "platform-day"


class TestRegistration:
    def test_registered_with_both_arms(self):
        experiment = default_registry().get(NAME)
        outages = [params["outage"] for params in experiment.grid]
        assert sorted(outages) == [False, True]
        assert len(experiment.smoke_grid) == 2
        assert experiment.schema.fields == ("outage", "scorecard")

    def test_smoke_arm_is_shorter(self):
        experiment = default_registry().get(NAME)
        full = {p["day_seconds"] for p in experiment.grid}
        smoke = {p["day_seconds"] for p in experiment.smoke_grid}
        assert max(smoke) < min(full)


class TestSmokeRun:
    @pytest.fixture(scope="class")
    def smoke_runs(self):
        result = run_experiments(
            default_registry(), names=[NAME], smoke=True, jobs=1
        )
        return result.runs

    def test_scorecard_keys_are_exact(self, smoke_runs):
        assert len(smoke_runs) == 1 and len(smoke_runs[0].results) == 2
        for result in smoke_runs[0].results:
            card = result["scorecard"]
            assert tuple(sorted(card)) == scorecard_keys()
            assert card["conservation.ok"] is True

    def test_outage_arm_fails_over_and_sheds_in_order(self, smoke_runs):
        by_outage = {
            result["outage"]: result["scorecard"]
            for run in smoke_runs for result in run.results
        }
        outage, control = by_outage[True], by_outage[False]
        assert outage["failover.routed"] > 0
        assert outage["class.batch.shed"] > 0
        assert outage["class.live.shed"] == 0
        assert control["failover.routed"] == 0
        assert control["jobs.shed"] == 0

    def test_manifest_byte_identical_across_jobs(self, smoke_runs):
        serial = manifest_text(build_manifest(smoke_runs))
        sharded = run_experiments(
            default_registry(), names=[NAME], smoke=True, jobs=2
        )
        assert manifest_text(build_manifest(sharded.runs)) == serial
