"""Shared fixtures: small, fast synthetic videos for codec-level tests."""

from __future__ import annotations

import pytest

from repro.video.content import ContentSpec, SyntheticVideo


@pytest.fixture(scope="session")
def tiny_video():
    """A 5-frame, low-resolution-proxy clip with moderate motion."""
    spec = ContentSpec(name="tiny", resolution_name="480p", fps=30, motion=1.0,
                       detail=0.4, noise=1.0, sprites=3)
    return SyntheticVideo(spec, seed=7, proxy_height=36).video(5)


@pytest.fixture(scope="session")
def static_video():
    """A 5-frame, nearly static clip (easy content)."""
    spec = ContentSpec(name="static", resolution_name="480p", fps=30, motion=0.0,
                       detail=0.2, noise=0.0, sprites=1)
    return SyntheticVideo(spec, seed=3, proxy_height=36).video(5)


@pytest.fixture(scope="session")
def noisy_video():
    """A 6-frame noisy, high-motion clip (hard content)."""
    spec = ContentSpec(name="noisy", resolution_name="480p", fps=30, motion=2.5,
                       detail=0.8, noise=3.0, sprites=6)
    return SyntheticVideo(spec, seed=11, proxy_height=36).video(6)
