"""Shared fixtures plus the CI shard splitter.

Fixtures: small, fast synthetic videos for codec-level tests.

Sharding: when ``REPRO_TEST_SHARD=<index>/<total>`` is set (1-based
index), collection keeps only the test files assigned to that shard by
the committed ``tests/shards.json`` manifest, so CI can fan the tier-1
suite out across parallel jobs.  Files the manifest does not know about
fall back to a stable hash of their basename -- a brand-new test file
runs in exactly one shard without touching the manifest, and the three
shards always partition the suite.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import pytest

from repro.video.content import ContentSpec, SyntheticVideo

SHARD_ENV_VAR = "REPRO_TEST_SHARD"
SHARDS_MANIFEST = Path(__file__).resolve().parent / "shards.json"


def load_shard_manifest(path: Path = SHARDS_MANIFEST) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def shard_of(basename: str, manifest: dict, total: int) -> int:
    """The 1-based shard a test file runs in.

    Manifest assignments apply only when the manifest was built for this
    shard count; otherwise (and for unlisted files) a stable CRC32 of
    the basename keeps the partition property without coordination.
    """
    if manifest.get("count") == total:
        assigned = manifest.get("assignments", {}).get(basename)
        if assigned is not None:
            return ((int(assigned) - 1) % total) + 1
    return (zlib.crc32(basename.encode("utf-8")) % total) + 1


def parse_shard_spec(spec: str) -> tuple:
    index_text, sep, total_text = spec.partition("/")
    try:
        index, total = int(index_text), int(total_text)
    except ValueError:
        index, total = 0, 0
    if not sep or total < 1 or not 1 <= index <= total:
        raise pytest.UsageError(
            f"{SHARD_ENV_VAR}={spec!r}: expected <index>/<total> with "
            "1 <= index <= total"
        )
    return index, total


def pytest_collection_modifyitems(config, items):
    spec = os.environ.get(SHARD_ENV_VAR)
    if not spec:
        return
    index, total = parse_shard_spec(spec)
    manifest = load_shard_manifest() if SHARDS_MANIFEST.exists() else {}
    kept, deselected = [], []
    for item in items:
        basename = Path(str(item.fspath)).name
        if shard_of(basename, manifest, total) == index:
            kept.append(item)
        else:
            deselected.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = kept


@pytest.fixture(scope="session")
def tiny_video():
    """A 5-frame, low-resolution-proxy clip with moderate motion."""
    spec = ContentSpec(name="tiny", resolution_name="480p", fps=30, motion=1.0,
                       detail=0.4, noise=1.0, sprites=3)
    return SyntheticVideo(spec, seed=7, proxy_height=36).video(5)


@pytest.fixture(scope="session")
def static_video():
    """A 5-frame, nearly static clip (easy content)."""
    spec = ContentSpec(name="static", resolution_name="480p", fps=30, motion=0.0,
                       detail=0.2, noise=0.0, sprites=1)
    return SyntheticVideo(spec, seed=3, proxy_height=36).video(5)


@pytest.fixture(scope="session")
def noisy_video():
    """A 6-frame noisy, high-motion clip (hard content)."""
    spec = ContentSpec(name="noisy", resolution_name="480p", fps=30, motion=2.5,
                       detail=0.8, noise=3.0, sprites=6)
    return SyntheticVideo(spec, seed=11, proxy_height=36).video(6)
