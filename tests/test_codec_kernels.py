"""Bit-exactness parity suite: batched hot paths vs scalar references.

The PR3 performance overhaul rewrote the codec's inner loops as batched
kernel passes (``repro.codec.kernels``), a SAD-map motion search, and a
vectorized intra scorer.  The contract is *bit-exactness*: same encoded
bits, same PSNRs, same reconstruction, element for element.  This suite
is the proof -- every fast path is compared against its preserved
reference implementation with ``np.array_equal`` (no tolerances).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import entropy
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder, encode_video
from repro.codec.kernels import (
    batch_block_bits,
    batch_dequantize,
    batch_forward_dct,
    batch_inverse_dct,
    batch_quantize,
    batch_sad,
    batch_transform_rd,
)
from repro.codec.prediction import (
    MotionVector,
    SearchPlanes,
    _best_intra_reference,
    _motion_search_reference,
    best_intra,
    motion_search,
    sample_block,
)
from repro.codec.profiles import PROFILES_BY_NAME
from repro.codec.transform import (
    dequantize,
    forward_dct,
    inverse_dct,
    quantize,
    transform_rd,
    transform_rd_single,
)
from repro.video.frame import Frame, Resolution


def _frames(height, width, count, seed=7, sigma=2.0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 255, (height + 4 * count, width + 4 * count))
    for _ in range(2):
        base = (
            base
            + np.roll(base, 1, 0) + np.roll(base, 1, 1)
            + np.roll(base, -1, 0) + np.roll(base, -1, 1)
        ) / 5.0
    out = []
    for i in range(count):
        data = base[2 * i : 2 * i + height, 3 * i : 3 * i + width]
        data = data + rng.normal(0.0, sigma, (height, width))
        out.append(np.clip(data, 0, 255).astype(np.float32))
    return out


def _resolution(height, width):
    return Resolution(
        pixels=width * height, width=width, height=height, name="parity"
    )


class TestBatchedKernels:
    """Stacked kernel passes == per-block scalar transforms, bitwise."""

    @pytest.mark.parametrize("size", [4, 8, 16])
    @pytest.mark.parametrize("qp", [12.0, 30.0, 45.0])
    def test_transform_stack_matches_per_block(self, size, qp):
        rng = np.random.default_rng(size)
        stack = rng.uniform(-255, 255, (17, size, size))
        coefficients = batch_forward_dct(stack)
        levels = batch_quantize(coefficients, qp)
        reconstructed = batch_inverse_dct(batch_dequantize(levels, qp))
        for i in range(stack.shape[0]):
            block_coeff = forward_dct(stack[i])
            assert np.array_equal(coefficients[i], block_coeff)
            block_levels = quantize(block_coeff, qp)
            assert np.array_equal(levels[i], block_levels)
            assert np.array_equal(
                reconstructed[i], inverse_dct(dequantize(block_levels, qp))
            )

    @pytest.mark.parametrize("qp", [20.0, 36.0])
    def test_batch_transform_rd_matches_scalar(self, qp):
        rng = np.random.default_rng(3)
        stack = rng.uniform(-128, 128, (23, 8, 8))
        levels, reconstructed, distortions = batch_transform_rd(stack, qp)
        for i in range(stack.shape[0]):
            ref_levels, ref_recon, ref_dist = transform_rd(stack[i], qp)
            assert np.array_equal(levels[i], ref_levels)
            assert np.array_equal(reconstructed[i], ref_recon)
            assert float(distortions[i]) == ref_dist

    def test_transform_rd_single_matches_reference(self):
        rng = np.random.default_rng(9)
        for qp in (8.0, 30.0, 48.0):
            residual = rng.uniform(-200, 200, (8, 8))
            fast = transform_rd_single(residual, qp)
            reference = transform_rd(residual, qp)
            assert np.array_equal(fast[0], reference[0])
            assert np.array_equal(fast[1], reference[1])
            assert fast[2] == reference[2]

    def test_batch_block_bits_matches_both_scalars(self):
        rng = np.random.default_rng(4)
        stack = rng.integers(-40, 40, (31, 8, 8)).astype(np.int64)
        stack[0][:] = 0  # skip block
        stack[1][:] = 0
        stack[1][0, 0] = 3  # DC-only block
        for ee in (0.85, 1.0):
            batched = batch_block_bits(stack, ee)
            for i in range(stack.shape[0]):
                reference = entropy._block_bits_reference(stack[i], ee)
                assert float(batched[i]) == reference
                assert entropy.block_bits(stack[i], ee) == reference

    def test_block_bits_huge_levels_fall_back_exactly(self):
        levels = np.zeros((8, 8), dtype=np.int64)
        levels[0, 0] = 5000  # beyond the Golomb LUT
        levels[3, 5] = -4097
        reference = entropy._block_bits_reference(levels)
        assert entropy.block_bits(levels) == reference
        assert float(batch_block_bits(levels[np.newaxis])[0]) == reference

    def test_block_bits_non_square_matches(self):
        rng = np.random.default_rng(6)
        levels = rng.integers(-9, 9, (4, 6)).astype(np.int64)
        assert entropy.block_bits(levels) == entropy._block_bits_reference(levels)

    def test_batch_sad_matches_scalar_sums(self):
        rng = np.random.default_rng(8)
        stack = rng.uniform(0, 255, (9, 8, 8))
        source = rng.uniform(0, 255, (8, 8))
        sads = batch_sad(stack, source)
        for i in range(stack.shape[0]):
            assert float(sads[i]) == float(np.abs(stack[i] - source).sum())

    def test_stack_shape_validated(self):
        with pytest.raises(ValueError):
            batch_forward_dct(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            batch_block_bits(np.zeros((4, 8, 6), dtype=np.int64))


class TestPredictionParity:
    """Vectorized intra/motion search == the scalar walks, decision for
    decision (same winners, same tie-breaks, same SADs)."""

    @pytest.mark.parametrize("rounds", [1, 2])
    def test_best_intra_matches_reference(self, rounds):
        rng = np.random.default_rng(12)
        recon = rng.uniform(0, 255, (40, 48))
        source = rng.uniform(0, 255, (40, 48))
        for y, x, size in [(0, 0, 8), (0, 16, 8), (16, 0, 8), (24, 24, 8), (8, 8, 4)]:
            block = source[y : y + size, x : x + size]
            fast = best_intra(block, recon, y, x, size, rounds)
            reference = _best_intra_reference(block, recon, y, x, size, rounds)
            assert fast[0] == reference[0]
            assert np.array_equal(fast[1], reference[1])
            assert fast[2] == reference[2]

    def test_search_planes_sample_matches_sample_block(self):
        rng = np.random.default_rng(13)
        reference = rng.uniform(0, 255, (32, 40))
        planes = SearchPlanes(reference)
        for y in (0.0, 3.0, 3.5, 27.5, -1.0, 30.0):
            for x in (0.0, 5.0, 5.5, 35.5, -0.5):
                expected = sample_block(reference, y, x, 8)
                got = planes.sample(y, x, 8)
                if expected is None:
                    assert got is None
                else:
                    assert np.array_equal(got, expected)

    @pytest.mark.parametrize("half_pel", [True, False])
    @pytest.mark.parametrize("search_range", [4, 8, 12])
    def test_motion_search_matches_reference(self, half_pel, search_range):
        rng = np.random.default_rng(search_range)
        reference = rng.uniform(0, 255, (48, 64))
        # Shifted + noisy source so searches move and refine.
        source_plane = np.roll(np.roll(reference, 2, axis=0), -3, axis=1)
        source_plane = source_plane + rng.normal(0, 3.0, reference.shape)
        planes = SearchPlanes(reference)
        predicted = MotionVector(dx=-3.0, dy=2.0)
        for y in (0, 8, 24, 40):
            for x in (0, 16, 56):
                source = source_plane[y : y + 8, x : x + 8]
                for pmv in (MotionVector(0.0, 0.0), predicted):
                    fast = motion_search(
                        source, reference, y, x, 8, search_range, half_pel,
                        pmv, planes=planes,
                    )
                    ref = _motion_search_reference(
                        source, reference, y, x, 8, search_range, half_pel, pmv
                    )
                    assert fast[0] == ref[0]
                    assert np.array_equal(fast[1], ref[1])
                    assert fast[2] == ref[2]


class TestEncoderParity:
    """fast=True and fast=False encoders emit identical bitstreams."""

    @pytest.mark.parametrize("name", sorted(PROFILES_BY_NAME))
    def test_fast_and_reference_encoders_bit_identical(self, name):
        profile = PROFILES_BY_NAME[name]
        height, width = 40, 56
        frames = _frames(height, width, 4, seed=21)
        nominal = _resolution(height, width)
        outputs = []
        for fast in (True, False):
            encoder = Encoder(profile, keyframe_interval=3, fast=fast)
            outputs.append(
                [
                    encoder.encode_frame(Frame(data, nominal, i), qp)
                    for i, (data, qp) in enumerate(
                        zip(frames, (20.0, 36.0, 28.0, 36.0))
                    )
                ]
            )
        fast_frames, reference_frames = outputs
        for a, b in zip(fast_frames, reference_frames):
            assert a.bits == b.bits
            assert a.sad == b.sad
            assert np.array_equal(a.recon, b.recon)
            assert self._records_equal(a.records, b.records)

    @staticmethod
    def _records_equal(a_records, b_records):
        if len(a_records) != len(b_records):
            return False
        for a, b in zip(a_records, b_records):
            if (a.y, a.x, a.size, a.mode) != (b.y, b.x, b.size, b.mode):
                return False
            if a.mode == "split":
                if not TestEncoderParity._records_equal(a.split, b.split):
                    return False
                continue
            if (a.intra_mode, a.ref_index, a.mv, a.dc) != (
                b.intra_mode, b.ref_index, b.mv, b.dc
            ):
                return False
            if not np.array_equal(a.levels, b.levels):
                return False
        return True

    def test_ragged_frame_parity(self):
        # Odd dimensions exercise the edge-block path in both modes.
        height, width = 37, 51
        frames = _frames(height, width, 2, seed=33)
        nominal = _resolution(height, width)
        recons = []
        for fast in (True, False):
            chunk = encode_video(
                type("V", (), {
                    "frames": [Frame(f, nominal, i) for i, f in enumerate(frames)],
                    "fps": 30.0,
                    "nominal": nominal,
                })(),
                PROFILES_BY_NAME["libx264"], 30.0, fast=fast,
            )
            recons.append([f.recon for f in chunk.frames])
        for a, b in zip(*recons):
            assert np.array_equal(a, b)


class TestDecoderParity:
    """The batched whole-frame residual pass decodes to the same planes."""

    @pytest.mark.parametrize("name", ["libx264", "vcu-vp9"])
    def test_fast_and_slow_decode_match_encoder_recon(self, name):
        profile = PROFILES_BY_NAME[name]
        height, width = 40, 56
        frames = _frames(height, width, 4, seed=40)
        nominal = _resolution(height, width)
        encoder = Encoder(profile, keyframe_interval=3, fast=True)
        encoded = [
            encoder.encode_frame(Frame(data, nominal, i), 30.0)
            for i, data in enumerate(frames)
        ]
        for fast in (True, False):
            decoder = Decoder(profile, (height, width), fast=fast)
            for frame in encoded:
                recon = decoder.decode_frame(frame)
                assert np.array_equal(recon, frame.recon)
