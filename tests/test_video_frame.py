"""Unit tests for resolutions, frames, and raw video."""

import numpy as np
import pytest

from repro.video.frame import (
    LADDER,
    Frame,
    RawVideo,
    Resolution,
    output_ladder,
    psnr,
    resolution,
    sequence_psnr,
)


def test_ladder_is_sorted_by_pixels():
    pixels = [r.pixels for r in LADDER]
    assert pixels == sorted(pixels)
    assert LADDER[0].name == "144p"
    assert LADDER[-1].name == "4320p"


def test_resolution_lookup():
    r = resolution("1080p")
    assert (r.width, r.height) == (1920, 1080)
    assert r.megapixels == pytest.approx(2.0736)


def test_unknown_resolution_raises():
    with pytest.raises(KeyError):
        resolution("999p")


def test_output_ladder_matches_paper_example():
    # Figure 2b / Section 3.1: a 1080p input produces 1080p..144p.
    names = [r.name for r in output_ladder(resolution("1080p"))]
    assert names == ["1080p", "720p", "480p", "360p", "240p", "144p"]


def test_output_ladder_geometric_series_property():
    # Footnote 2: the sub-1080p rungs sum to less than 1080p itself.
    ladder = output_ladder(resolution("1080p"))
    top = ladder[0].pixels
    rest = sum(r.pixels for r in ladder[1:])
    assert rest < top


def test_frame_requires_2d():
    with pytest.raises(ValueError):
        Frame(np.zeros((2, 2, 3), dtype=np.float32), resolution("144p"))


def test_frame_converts_dtype():
    frame = Frame(np.zeros((4, 4), dtype=np.uint8), resolution("144p"))
    assert frame.data.dtype == np.float32


def test_rawvideo_duration_and_pixels():
    frames = [Frame(np.zeros((4, 8), np.float32), resolution("480p"), i) for i in range(30)]
    video = RawVideo(frames, resolution("480p"), fps=30)
    assert video.duration_seconds == pytest.approx(1.0)
    assert video.nominal_pixels == resolution("480p").pixels * 30


def test_rawvideo_rejects_empty():
    with pytest.raises(ValueError):
        RawVideo([], resolution("480p"), fps=30)


def test_scaling_down_reduces_proxy_and_nominal():
    frames = [Frame(np.arange(32 * 18, dtype=np.float32).reshape(18, 32), resolution("480p"))]
    video = RawVideo(frames, resolution("480p"), fps=30)
    scaled = video.scaled_to(resolution("240p"))
    assert scaled.nominal.name == "240p"
    assert scaled.frames[0].data.size < frames[0].data.size


def test_upscaling_rejected():
    frames = [Frame(np.zeros((8, 8), np.float32), resolution("240p"))]
    video = RawVideo(frames, resolution("240p"), fps=30)
    with pytest.raises(ValueError):
        video.scaled_to(resolution("4320p"))


def test_scale_to_same_resolution_is_identity():
    frames = [Frame(np.zeros((8, 8), np.float32), resolution("240p"))]
    video = RawVideo(frames, resolution("240p"), fps=30)
    assert video.scaled_to(resolution("240p")) is video


def test_psnr_identical_is_infinite():
    plane = np.random.default_rng(0).uniform(0, 255, (8, 8))
    assert psnr(plane, plane) == float("inf")


def test_psnr_known_value():
    ref = np.zeros((4, 4))
    test = np.full((4, 4), 16.0)
    # MSE = 256 -> PSNR = 10*log10(255^2/256) ~= 24.05 dB
    assert psnr(ref, test) == pytest.approx(24.05, abs=0.01)


def test_psnr_shape_mismatch():
    with pytest.raises(ValueError):
        psnr(np.zeros((2, 2)), np.zeros((3, 3)))


def test_sequence_psnr_pools_mse():
    res = resolution("144p")
    ref = [Frame(np.zeros((4, 4), np.float32), res, i) for i in range(2)]
    # One perfect frame + one noisy frame: pooled MSE halves the error.
    out = [Frame(np.zeros((4, 4), np.float32), res, 0),
           Frame(np.full((4, 4), 16.0, np.float32), res, 1)]
    value = sequence_psnr(ref, out)
    assert value == pytest.approx(24.05 + 10 * np.log10(2), abs=0.05)
