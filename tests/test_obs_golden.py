"""Golden-trace regression tests: the observability layer is deterministic.

A fixed-seed mini chaos drill (hang + silent corruption + sweeper repair
on a 4-VCU fleet) must serialize to a **byte-identical** JSONL trace on
every run, on every machine.  The golden copy lives in
``tests/golden/obs_drill_trace.jsonl``; any change to event ordering,
span attributes, float rounding, or the simulator's tie-breaking shows
up here as a diff.

To intentionally re-baseline after a behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_golden.py
"""

import os
import pathlib

import pytest

from repro import obs
from repro.cluster import CpuWorker, HealthPolicy, TranscodeCluster, VcuWorker
from repro.failures import (
    BackoffPolicy,
    FailureManager,
    FailureSweeper,
    FaultDomainPolicy,
    FaultInjector,
)
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.host import VcuHost
from repro.vcu.spec import HostSpec

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "obs_drill_trace.jsonl"


def _stable_host(tag: str) -> VcuHost:
    """A 2-VCU host with run-independent ids (global counters differ)."""
    host = VcuHost(
        host_spec=HostSpec(vcus_per_card=2, cards_per_tray=1, trays_per_host=1),
        host_id=tag,
    )
    for index, vcu in enumerate(host.vcus):
        vcu.vcu_id = f"{tag}-vcu{index}"
        vcu.telemetry.vcu_id = vcu.vcu_id
    return host


def _golden_drill():
    """One fixed-seed mini drill; returns (trace_jsonl, snapshot, cluster)."""
    with obs.installed() as hub:
        sim = Simulator()
        from repro.video.frame import resolution

        hosts = [_stable_host("gold-a"), _stable_host("gold-b")]
        policy = HealthPolicy(
            strike_budget=2, rescreen_delay_seconds=20.0, screen_seconds=2.0,
            rescreen_backoff=2.0, max_rescreen_failures=3,
        )
        workers = [
            VcuWorker(v, host=h, health_policy=policy)
            for h in hosts for v in h.vcus
        ]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16, name="gold-cpu")],
            integrity_check_rate=1.0, seed=11,
            backoff=BackoffPolicy(base_seconds=1.0, max_seconds=10.0, jitter=0.5),
            fault_domain=FaultDomainPolicy(
                window_seconds=200.0, distinct_vcu_threshold=2
            ),
        )
        manager = FailureManager(hosts, repair_cap=1, card_swap_threshold=1)
        sweeper = FailureSweeper(
            sim, manager, interval_seconds=25.0, repair_seconds=100.0,
            cluster=cluster,
        )
        sweeper.start(until=900.0)
        injector = FaultInjector(sim, [v for h in hosts for v in h.vcus], seed=3)
        injector.corrupt_at(2.0, hosts[1].vcus[0])
        injector.hang_at(8.0, hosts[0].vcus[0], duration=120.0)
        injector.hang_at(12.0, hosts[0].vcus[1], duration=120.0)
        graphs = [
            build_transcode_graph(f"gold-v{i}", resolution("720p"), 300, 30.0,
                                  bucket=PopularityBucket.WARM)
            for i in range(6)
        ]
        for i, g in enumerate(graphs):
            sim.call_in(5.0 * i, lambda g=g: cluster.submit(g))
        sim.run(until=900.0)
        sim.run()
        assert all(g.completed_at is not None for g in graphs)
        return hub.trace.to_jsonl(), hub.metrics.snapshot(now=sim.now), cluster


def test_same_seed_runs_produce_bit_identical_traces():
    trace_a, snap_a, _ = _golden_drill()
    trace_b, snap_b, _ = _golden_drill()
    assert trace_a == trace_b
    assert snap_a == snap_b


def test_trace_matches_checked_in_golden():
    trace, _, _ = _golden_drill()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(trace, encoding="utf-8")
        pytest.skip(f"golden re-baselined at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "golden trace missing -- regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = GOLDEN_PATH.read_text(encoding="utf-8")
    assert trace == golden, (
        "trace diverged from tests/golden/obs_drill_trace.jsonl; if the "
        "change is intentional, re-baseline with REPRO_UPDATE_GOLDEN=1"
    )


def test_golden_drill_actually_exercised_the_resilience_loop():
    # Guard against the golden fixture silently degenerating into a
    # happy-path run that locks down nothing interesting.
    trace, snapshot, cluster = _golden_drill()
    assert cluster.stats.hangs_detected >= 1
    assert cluster.stats.corrupt_caught >= 1
    assert cluster.stats.retries >= 1
    assert cluster.stats.workers_quarantined >= 1
    kinds = {line.split('"kind":"')[1].split('"')[0]
             for line in trace.splitlines()}
    for expected in ("step", "sched", "hang", "retry", "health", "graph",
                     "sweep", "device"):
        assert expected in kinds, f"no {expected!r} spans in the golden drill"
    assert snapshot["cluster.hangs_detected"] == cluster.stats.hangs_detected
