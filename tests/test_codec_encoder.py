"""Integration tests for the encoder, decoder, and their round trip."""

import numpy as np
import pytest

from repro.codec.decoder import decode_chunk
from repro.codec.encoder import Encoder, encode_video
from repro.codec.profiles import ALL_PROFILES, LIBVPX, LIBX264, VCU_H264, VCU_VP9, profile
from repro.codec.temporal_filter import build_altref, temporal_filter
from repro.video.content import ContentSpec, SyntheticVideo


class TestEncoderBasics:
    def test_first_frame_is_keyframe(self, tiny_video):
        encoder = Encoder(LIBX264)
        result = encoder.encode_frame(tiny_video.frames[0], qp=32)
        assert result.frame_type == "key"
        assert result.inter_blocks == 0

    def test_inter_frames_follow(self, tiny_video):
        encoder = Encoder(LIBX264)
        encoder.encode_frame(tiny_video.frames[0], qp=32)
        result = encoder.encode_frame(tiny_video.frames[1], qp=32)
        assert result.frame_type == "inter"
        assert result.inter_blocks > 0

    def test_keyframe_interval(self, tiny_video):
        encoder = Encoder(LIBX264, keyframe_interval=2)
        types = [encoder.encode_frame(f, qp=32).frame_type for f in tiny_video.frames[:4]]
        assert types == ["key", "inter", "key", "inter"]

    def test_inter_frames_cheaper_than_key(self, static_video):
        chunk = encode_video(static_video, LIBX264, qp=32)
        key = chunk.frames[0].bits
        inter = np.mean([f.bits for f in chunk.frames[1:]])
        assert inter < key

    def test_bits_positive(self, tiny_video):
        chunk = encode_video(tiny_video, LIBX264, qp=32)
        assert all(f.bits > 0 for f in chunk.frames)

    def test_reset_clears_state(self, tiny_video):
        encoder = Encoder(LIBX264)
        encoder.encode_frame(tiny_video.frames[0], qp=32)
        encoder.reset()
        result = encoder.encode_frame(tiny_video.frames[1], qp=32)
        assert result.frame_type == "key"
        assert result.index == 0

    def test_bad_keyframe_interval(self):
        with pytest.raises(ValueError):
            Encoder(LIBX264, keyframe_interval=0)


class TestRDBehaviour:
    def test_lower_qp_higher_quality_more_bits(self, tiny_video):
        low = encode_video(tiny_video, LIBX264, qp=16)
        high = encode_video(tiny_video, LIBX264, qp=44)
        assert low.psnr > high.psnr
        assert low.total_bits > high.total_bits

    def test_static_content_cheaper_than_noisy(self, static_video, noisy_video):
        easy = encode_video(static_video, LIBX264, qp=32)
        hard = encode_video(noisy_video, LIBX264, qp=32)
        assert easy.bits_per_pixel < hard.bits_per_pixel

    def test_bitrate_scales_with_nominal_resolution(self, tiny_video):
        chunk = encode_video(tiny_video, LIBX264, qp=32)
        expected_scale = tiny_video.nominal.pixels / tiny_video.frames[0].proxy_pixels
        assert chunk.total_bits == pytest.approx(chunk.total_bits_proxy * expected_scale)

    def test_temporal_filter_helps_noisy_content(self, noisy_video):
        with_altref = encode_video(noisy_video, LIBVPX, qp=32)
        import dataclasses
        no_altref = dataclasses.replace(LIBVPX, temporal_filter=False)
        without = encode_video(noisy_video, no_altref, qp=32)
        # The altref reference should not hurt; typically it reduces bits.
        assert with_altref.total_bits <= without.total_bits * 1.05


class TestRoundTrip:
    @pytest.mark.parametrize("profile_name", [p.name for p in ALL_PROFILES])
    def test_decoder_reproduces_encoder_recon(self, tiny_video, profile_name):
        prof = profile(profile_name)
        chunk = encode_video(tiny_video, prof, qp=30)
        planes = decode_chunk(chunk, prof)
        for plane, frame in zip(planes, chunk.frames):
            np.testing.assert_array_equal(plane, frame.recon)

    def test_round_trip_with_keyframes_mid_stream(self, tiny_video):
        chunk = encode_video(tiny_video, LIBVPX, qp=30, keyframe_interval=2)
        planes = decode_chunk(chunk, LIBVPX)
        for plane, frame in zip(planes, chunk.frames):
            np.testing.assert_array_equal(plane, frame.recon)


class TestProfiles:
    def test_profile_lookup(self):
        assert profile("libx264") is LIBX264
        with pytest.raises(KeyError):
            profile("libx265")

    def test_vcu_profiles_lack_trellis(self):
        assert VCU_H264.trellis_discount == 1.0
        assert VCU_VP9.trellis_discount == 1.0
        assert LIBX264.trellis_discount < 1.0

    def test_vp9_profiles_have_temporal_filter(self):
        assert VCU_VP9.temporal_filter and LIBVPX.temporal_filter
        assert not VCU_H264.temporal_filter and not LIBX264.temporal_filter

    def test_rate_control_efficiency_copy(self):
        tuned = VCU_VP9.with_rate_control_efficiency(0.9)
        assert tuned.rate_control_efficiency == 0.9
        assert VCU_VP9.rate_control_efficiency == 1.0
        assert tuned.bit_scale < VCU_VP9.bit_scale

    def test_invalid_profile_parameters_rejected(self):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(LIBX264, codec="h265")
        with pytest.raises(ValueError):
            dataclasses.replace(LIBX264, block_size=12)
        with pytest.raises(ValueError):
            dataclasses.replace(LIBX264, reference_frames=0)


class TestTemporalFilter:
    def test_reduces_temporal_noise(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(50, 200, (24, 24))
        frames = [base + rng.normal(0, 5, base.shape) for _ in range(3)]
        filtered = temporal_filter(frames, block_size=8, search_range=2)
        noise_before = np.abs(frames[1] - base).mean()
        noise_after = np.abs(filtered - base).mean()
        assert noise_after < noise_before

    def test_requires_three_frames(self):
        with pytest.raises(ValueError):
            temporal_filter([np.zeros((8, 8))] * 2)

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            temporal_filter([np.zeros((8, 8))] * 3, iterations=0)

    def test_build_altref_needs_history(self):
        with pytest.raises(ValueError):
            build_altref([np.zeros((8, 8))] * 2)
