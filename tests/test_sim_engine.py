"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import Event


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    sim.call_in(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_fire_in_time_order_with_fifo_ties():
    sim = Simulator()
    order = []
    sim.call_in(2.0, lambda: order.append("b"))
    sim.call_in(1.0, lambda: order.append("a"))
    sim.call_in(2.0, lambda: order.append("c"))  # same time as b, added later
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.call_in(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_until_advances_idle_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_process_yields_delays():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 3.0
        trace.append(sim.now)
        yield 4.0
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 3.0, 7.0]


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    sim.process(waiter())
    sim.call_in(6.0, lambda: gate.succeed("payload"))
    sim.run()
    assert got == [(6.0, "payload")]


def test_process_waits_on_process_return_value():
    sim = Simulator()
    results = []

    def inner():
        yield 2.0
        return 99

    def outer():
        value = yield sim.process(inner())
        results.append(value)

    sim.process(outer())
    sim.run()
    assert results == [99]


def test_event_fires_once_only():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_event_value_before_fire_raises():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        _ = sim.event().value


def test_waiting_on_fired_event_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed(5)
    got = []

    def waiter():
        got.append((yield event))

    sim.process(waiter())
    sim.run()
    assert got == [5]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(5.0, "b")
    combined = sim.all_of([a, b])
    done_at = []

    def waiter():
        values = yield combined
        done_at.append((sim.now, values))

    sim.process(waiter())
    sim.run()
    assert done_at == [(5.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    sim.run()
    assert combined.fired


def test_negative_delay_rejected():
    sim = Simulator()

    def proc():
        yield -1.0

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.call_in(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_bad_yield_type_rejected():
    sim = Simulator()

    def proc():
        yield "nonsense"

    sim.process(proc())
    with pytest.raises(TypeError):
        sim.run()
