"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import Event, Interrupt


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    sim.call_in(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_fire_in_time_order_with_fifo_ties():
    sim = Simulator()
    order = []
    sim.call_in(2.0, lambda: order.append("b"))
    sim.call_in(1.0, lambda: order.append("a"))
    sim.call_in(2.0, lambda: order.append("c"))  # same time as b, added later
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.call_in(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_until_advances_idle_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_process_yields_delays():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 3.0
        trace.append(sim.now)
        yield 4.0
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 3.0, 7.0]


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    sim.process(waiter())
    sim.call_in(6.0, lambda: gate.succeed("payload"))
    sim.run()
    assert got == [(6.0, "payload")]


def test_process_waits_on_process_return_value():
    sim = Simulator()
    results = []

    def inner():
        yield 2.0
        return 99

    def outer():
        value = yield sim.process(inner())
        results.append(value)

    sim.process(outer())
    sim.run()
    assert results == [99]


def test_event_fires_once_only():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_event_value_before_fire_raises():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        _ = sim.event().value


def test_waiting_on_fired_event_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed(5)
    got = []

    def waiter():
        got.append((yield event))

    sim.process(waiter())
    sim.run()
    assert got == [5]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(5.0, "b")
    combined = sim.all_of([a, b])
    done_at = []

    def waiter():
        values = yield combined
        done_at.append((sim.now, values))

    sim.process(waiter())
    sim.run()
    assert done_at == [(5.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    sim.run()
    assert combined.fired


def test_negative_delay_rejected():
    sim = Simulator()

    def proc():
        yield -1.0

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.call_in(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_bad_yield_type_rejected():
    sim = Simulator()

    def proc():
        yield "nonsense"  # lint: allow=sim-yield -- the bad yield under test

    sim.process(proc())
    with pytest.raises(TypeError):
        sim.run()


# --------------------------------------------------------------------- #
# Resilience primitives: timer cancellation, interruption, any_of


def test_cancelled_timer_never_fires_and_does_not_stretch_the_run():
    sim = Simulator()
    fired = []
    timer = sim.call_in(100.0, lambda: fired.append("late"))
    sim.call_in(2.0, lambda: fired.append("early"))
    timer.cancel()
    end = sim.run()
    assert fired == ["early"]
    assert end == 2.0  # the cancelled entry must not advance the clock


def test_interrupt_terminates_a_sleeping_process():
    sim = Simulator()
    trace = []

    def sleeper():
        trace.append("start")
        yield 50.0
        trace.append("never")

    proc = sim.process(sleeper())
    sim.call_in(5.0, lambda: proc.interrupt("deadline"))
    sim.run()
    assert trace == ["start"]
    assert proc.interrupted
    assert proc.done.fired
    assert isinstance(proc.done.value, Interrupt)
    assert proc.done.value.cause == "deadline"


def test_interrupt_terminates_a_process_waiting_on_an_event():
    sim = Simulator()
    gate = sim.event()
    woke = []

    def waiter():
        woke.append((yield gate))

    proc = sim.process(waiter())
    sim.call_in(1.0, lambda: proc.interrupt())
    sim.call_in(9.0, lambda: gate.succeed("too late"))
    sim.run()
    # The stale wake-up from the gate must not resume the dead process.
    assert woke == []
    assert not proc.is_alive


def test_interrupt_can_be_caught_and_the_process_continues():
    sim = Simulator()
    trace = []

    def resilient():
        try:
            yield 50.0
        except Interrupt as interrupt:
            trace.append(f"caught:{interrupt.cause}")
        yield 1.0
        trace.append(sim.now)
        return "survived"

    proc = sim.process(resilient())
    sim.call_in(5.0, lambda: proc.interrupt("poke"))
    sim.run()
    assert trace == ["caught:poke", 6.0]
    assert proc.done.value == "survived"


def test_interrupting_a_finished_process_is_a_noop():
    sim = Simulator()

    def quick():
        yield 1.0
        return "done"

    proc = sim.process(quick())
    sim.run()
    assert proc.interrupt("late") is False
    assert proc.done.value == "done"


def test_any_of_fires_with_winning_index_and_value():
    sim = Simulator()
    slow, fast = sim.timeout(9.0, "slow"), sim.timeout(2.0, "fast")
    got = []

    def waiter():
        got.append((yield sim.any_of([slow, fast])))

    sim.process(waiter())
    sim.run(until=3.0)
    assert got == [(1, "fast")]


def test_any_of_tie_prefers_lowest_index():
    sim = Simulator()
    a, b = sim.timeout(4.0, "a"), sim.timeout(4.0, "b")
    combined = sim.any_of([a, b])
    sim.run()
    assert combined.value == (0, "a")


def test_any_of_with_already_fired_event():
    sim = Simulator()
    done = sim.event()
    done.succeed("ready")
    combined = sim.any_of([sim.timeout(5.0, "later"), done])
    sim.run(until=1.0)
    assert combined.fired
    assert combined.value == (1, "ready")


def test_any_of_rejects_empty_input():
    with pytest.raises(ValueError):
        Simulator().any_of([])


def test_any_of_can_race_a_process_against_a_deadline():
    sim = Simulator()
    outcomes = []

    def work(seconds):
        yield seconds
        return "finished"

    def supervise(seconds, deadline):
        job = sim.process(work(seconds))
        index, value = yield sim.any_of([job.done, sim.timeout(deadline, "deadline")])
        if index == 0:
            outcomes.append(("ok", value))
        else:
            job.interrupt("deadline")
            outcomes.append(("timed_out", value))

    sim.process(supervise(2.0, 10.0))
    sim.process(supervise(50.0, 10.0))
    sim.run(until=60.0)
    assert ("ok", "finished") in outcomes
    assert ("timed_out", "deadline") in outcomes
