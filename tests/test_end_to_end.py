"""End-to-end integration: upload -> cluster -> assembly -> correlation.

The full life of a video, crossing every layer: a workload generator
produces uploads, the cluster transcodes their step graphs on simulated
VCUs, assembly reconstructs the output variants and runs the playability
integrity checks, and -- when a corrupt device slips bad chunks through --
fault correlation identifies the culprit from the recorded placements
(Section 4.4's workflow end to end).
"""

import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.sim import Simulator
from repro.transcode.assembly import assemble, fault_correlation
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.workloads.upload import UploadGenerator


def run_pipeline(corrupt_one=False, integrity_rate=1.0, screening=True,
                 videos=5, vcus=3, seed=21):
    sim = Simulator()
    devices = [
        Vcu(DEFAULT_VCU_SPEC, vcu_id=f"e2e-{corrupt_one}-{screening}-{seed}-{i}")
        for i in range(vcus)
    ]
    if corrupt_one:
        devices[0].mark_corrupt()
    workers = [VcuWorker(v, golden_screening=screening) for v in devices]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=24)],
        integrity_check_rate=integrity_rate, seed=seed,
    )
    generator = UploadGenerator(
        arrivals_per_second=0.5, seed=seed, mean_duration_seconds=20.0
    )
    uploads = [generator.sample_video() for _ in range(videos)]
    graphs = []
    for video in uploads:
        graph = generator.to_graph(video)
        graphs.append((video, graph))
        cluster.submit(graph)
    sim.run()
    return cluster, uploads, graphs


class TestHappyPath:
    def test_every_video_assembles_playable(self):
        cluster, uploads, graphs = run_pipeline()
        assert cluster.stats.completed_graphs == len(uploads)
        for video, graph in graphs:
            report = assemble(graph, expected_frames=video.total_frames)
            assert report.length_check_passed, graph.video_id
            assert report.playable, graph.video_id

    def test_variant_set_matches_popularity_policy(self):
        _, uploads, graphs = run_pipeline()
        from repro.transcode.ladder import LadderPolicy

        policy = LadderPolicy()
        for video, graph in graphs:
            report = assemble(graph, expected_frames=video.total_frames)
            expected = {
                (codec, rung.name)
                for codec, rung in policy.variants(video.source, video.bucket)
            }
            produced = {(k.codec, k.resolution) for k in report.variants}
            assert produced == expected

    def test_all_frames_accounted_per_variant(self):
        _, uploads, graphs = run_pipeline()
        for video, graph in graphs:
            report = assemble(graph, expected_frames=video.total_frames)
            for variant in report.variants.values():
                assert variant.total_frames == video.total_frames


class TestCorruptionPath:
    def test_escaped_corruption_traced_to_culprit(self):
        # No screening, no integrity checks: bad chunks escape; assembly
        # flags the unplayable variants and correlation names the VCU.
        cluster, uploads, graphs = run_pipeline(
            corrupt_one=True, integrity_rate=0.0, screening=False
        )
        assert cluster.stats.corrupt_escaped > 0
        bad_vcu = cluster.vcu_workers[0].vcu.vcu_id
        unplayable = [
            graph.video_id
            for video, graph in graphs
            if not assemble(graph, expected_frames=video.total_frames).playable
        ]
        assert unplayable
        suspects = fault_correlation([g for _, g in graphs])
        assert set(suspects) == {bad_vcu}
        assert set(suspects[bad_vcu]) == set(unplayable)

    def test_mitigations_keep_everything_playable(self):
        cluster, uploads, graphs = run_pipeline(
            corrupt_one=True, integrity_rate=1.0, screening=True
        )
        assert cluster.stats.corrupt_escaped == 0
        for video, graph in graphs:
            report = assemble(graph, expected_frames=video.total_frames)
            assert report.playable
        assert fault_correlation([g for _, g in graphs]) == {}
