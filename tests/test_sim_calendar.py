"""Property suite for the calendar-queue engine (hypothesis).

Two oracles pin the PR8 engine swap down:

* :class:`~repro.sim.calendar.CalendarQueue` against a ``(when, seq)``
  heapq -- the exact total order the old engine implemented -- across
  arbitrary interleavings of pushes (tie-heavy, far-future, same-instant
  re-pushes) and batch pops.
* :mod:`repro.sim.engine` against :mod:`repro.sim.reference` (the frozen
  single-heap engine): randomly generated process/timer/timeout
  workloads must produce byte-identical dispatch traces, including
  ``run(until=...)`` boundaries, cancelled timers at the queue head, and
  zero-delay self-reschedules.

The satellite behaviours ride along: ``bool`` yields are rejected with a
useful TypeError, exotic int/float subclasses still work, and
``Simulator.timeout`` schedules without a Timer+closure round-trip.
"""

from __future__ import annotations

import enum
import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import reference
from repro.sim import engine
from repro.sim.calendar import CalendarQueue

# A grid of timestamps guaranteeing heavy ties plus values beyond the
# small test span (to force overflow migration), mixed with free floats.
tie_grid = st.sampled_from([0.0, 0.5, 1.0, 2.5, 7.75, 8.0, 9.0, 40.0, 200.0])
whens = st.one_of(
    tie_grid,
    st.floats(min_value=0.0, max_value=300.0,
              allow_nan=False, allow_infinity=False),
)

# Delay grid for engine scenarios: ties dominate; includes zero.
delay_grid = st.sampled_from([0.0, 0.001, 0.5, 1.0, 1.0, 2.5, 70.0])


def _drain(cal: CalendarQueue):
    out = []
    while cal:
        when, batch = cal.pop_batch()
        for entry in batch:
            out.append((when, entry))
    return out


class TestCalendarQueueOrder:
    @given(pushes=st.lists(whens, max_size=120))
    def test_drain_matches_heapq_total_order(self, pushes):
        cal = CalendarQueue(span=8.0)
        oracle = []
        for seq, when in enumerate(pushes):
            cal.push(when, seq)
            heapq.heappush(oracle, (when, seq))
        expected = [heapq.heappop(oracle) for _ in range(len(oracle))]
        assert _drain(cal) == expected

    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), whens),
            st.tuples(st.just("pop"), st.just(None)),
        ),
        max_size=120,
    ))
    def test_interleaved_pops_match_heapq(self, ops):
        """Pushes interleaved with batch pops, engine-style: a push after
        a pop lands at or after the popped timestamp (the simulator never
        schedules into the past)."""
        cal = CalendarQueue(span=8.0)
        oracle = []
        got = []
        expected = []
        now = 0.0
        seq = 0
        for op, offset in ops:
            if op == "push":
                when = now + offset
                cal.push(when, seq)
                heapq.heappush(oracle, (when, seq))
                seq += 1
            elif oracle:
                when, entries = cal.pop_batch()
                now = when
                got.extend((when, e) for e in entries)
                while oracle and oracle[0][0] == when:
                    expected.append(heapq.heappop(oracle))
        got.extend(_drain(cal))
        expected.extend(heapq.heappop(oracle) for _ in range(len(oracle)))
        assert got == expected

    @given(pushes=st.lists(whens, min_size=1, max_size=60))
    def test_peek_agrees_with_pop(self, pushes):
        cal = CalendarQueue(span=8.0)
        for seq, when in enumerate(pushes):
            cal.push(when, seq)
        while cal:
            peeked = cal.peek_when()
            when, _ = cal.pop_batch()
            assert peeked == when
        assert cal.peek_when() is None

    def test_same_instant_push_lands_in_fresh_bucket(self):
        """An entry pushed at the timestamp being dispatched fires after
        the already-queued ties -- the heapq would have done the same."""
        cal = CalendarQueue(span=8.0)
        cal.push(1.0, "a")
        cal.push(1.0, "b")
        when, batch = cal.pop_batch()
        assert (when, batch) == (1.0, ["a", "b"])
        cal.push(1.0, "c")  # scheduled *during* dispatch of t=1.0
        assert cal.pop_batch() == (1.0, ["c"])

    def test_horizon_never_moves_backwards(self):
        cal = CalendarQueue(span=8.0)
        cal.push(100.0, "far")
        cal.push(101.0, "farther")
        assert cal.pop_batch() == (100.0, ["far"])
        horizon_after_first = cal.horizon
        assert cal.pop_batch() == (101.0, ["farther"])
        assert cal.horizon >= horizon_after_first

    def test_empty_pop_raises_index_error(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop_batch()

    def test_rejects_non_positive_span(self):
        with pytest.raises(ValueError):
            CalendarQueue(span=0.0)

    @given(pushes=st.lists(whens, max_size=60))
    def test_pending_count_tracks_entries(self, pushes):
        cal = CalendarQueue(span=8.0)
        for seq, when in enumerate(pushes):
            cal.push(when, seq)
        assert cal.pending_count() == len(pushes)
        assert bool(cal) == bool(pushes)


# --------------------------------------------------------------------- #
# Engine vs the frozen reference


def _run_scenario(module, spec, until=None):
    """Execute one generated scenario on ``module``'s Simulator.

    ``spec`` is (process_delays, timers, timeouts): each process yields
    its delay list; timers are (when, cancelled) pairs; timeouts are
    (delay, value) pairs consumed by a dedicated waiter process.  The
    returned trace is every observable dispatch in order.
    """
    process_delays, timers, timeouts = spec
    sim = module.Simulator()
    trace = []

    def ticker(pid, delays):
        for i, delay in enumerate(delays):
            yield delay
            trace.append(("tick", pid, i, round(sim.now, 12)))

    for pid, delays in enumerate(process_delays):
        sim.process(ticker(pid, delays), name=f"p{pid}")

    for tid, (when, cancelled) in enumerate(timers):
        timer = sim.call_at(
            when, lambda tid=tid: trace.append(("timer", tid, round(sim.now, 12)))
        )
        if cancelled:
            timer.cancel()

    def waiter(wid, delay, value):
        got = yield sim.timeout(delay, value)
        trace.append(("timeout", wid, got, round(sim.now, 12)))

    for wid, (delay, value) in enumerate(timeouts):
        sim.process(waiter(wid, delay, value), name=f"w{wid}")

    end = sim.run(until=until)
    trace.append(("end", round(end, 12)))
    if until is not None:
        end = sim.run()  # drain the rest; the boundary must not lose events
        trace.append(("end", round(end, 12)))
    return trace


scenarios = st.tuples(
    st.lists(st.lists(delay_grid, max_size=6), max_size=6),
    st.lists(st.tuples(st.floats(min_value=0.0, max_value=90.0,
                                 allow_nan=False),
                       st.booleans()), max_size=4),
    st.lists(st.tuples(delay_grid, st.integers(0, 5)), max_size=4),
)


class TestEngineMatchesReference:
    @settings(deadline=None)
    @given(spec=scenarios)
    def test_traces_identical(self, spec):
        assert _run_scenario(engine, spec) == _run_scenario(reference, spec)

    @settings(deadline=None)
    @given(spec=scenarios,
           until=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_traces_identical_with_until_boundary(self, spec, until):
        assert (_run_scenario(engine, spec, until=until)
                == _run_scenario(reference, spec, until=until))

    @pytest.mark.parametrize("module", [engine, reference])
    def test_cancelled_timer_at_head_does_not_advance_clock(self, module):
        sim = module.Simulator()
        fired = []
        head = sim.call_at(5.0, lambda: fired.append("head"))
        sim.call_at(10.0, lambda: fired.append("tail"))
        head.cancel()
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0  # the cancelled t=5 timer left no footprint
        assert fired == []
        sim.run()
        assert fired == ["tail"]
        assert sim.now == 10.0

    @pytest.mark.parametrize("module", [engine, reference])
    def test_event_exactly_at_until_fires(self, module):
        sim = module.Simulator()
        fired = []
        sim.call_at(5.0, lambda: fired.append("at"))
        sim.run(until=5.0)
        assert fired == ["at"]


# --------------------------------------------------------------------- #
# Satellite: the yield-type ladder


class _Level(enum.IntEnum):
    LOW = 2


class TestYieldTypes:
    def test_bool_yield_raises_type_error(self):
        sim = engine.Simulator()

        def bad():
            yield True  # lint: allow=sim-yield -- the rejection under test

        sim.process(bad(), name="boolish")
        with pytest.raises(TypeError, match="never a delay"):
            sim.run()

    def test_bool_false_also_rejected(self):
        # False == 0, the historical hole: it used to schedule a
        # zero-delay resume instead of flagging the bug.
        sim = engine.Simulator()

        def bad():
            yield False  # lint: allow=sim-yield -- the rejection under test

        sim.process(bad(), name="falsy")
        with pytest.raises(TypeError, match="bool"):
            sim.run()

    def test_int_subclass_is_a_delay(self):
        sim = engine.Simulator()
        seen = []

        def proc():
            yield _Level.LOW
            seen.append(sim.now)

        sim.process(proc(), name="enumish")
        sim.run()
        assert seen == [2.0]

    def test_unrelated_object_raises_with_type_name(self):
        sim = engine.Simulator()

        def bad():
            yield "soon"  # lint: allow=sim-yield -- the rejection under test

        sim.process(bad(), name="stringly")
        with pytest.raises(TypeError, match="str"):
            sim.run()

    def test_negative_delay_raises(self):
        sim = engine.Simulator()

        def bad():
            yield -1.0

        sim.process(bad(), name="backwards")
        with pytest.raises(ValueError, match="negative"):
            sim.run()


class TestTimeoutFastPath:
    def test_timeout_delivers_value_without_timer(self):
        sim = engine.Simulator()
        got = []

        def waiter():
            got.append((yield sim.timeout(3.0, "payload")))

        sim.process(waiter(), name="w")
        sim.run()
        assert got == ["payload"]
        assert sim.now == 3.0

    def test_timeout_negative_delay_raises_eagerly(self):
        sim = engine.Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-0.5)

    def test_timeout_ties_fire_in_schedule_order(self):
        sim = engine.Simulator()
        order = []

        def waiter(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(waiter(tag), name=tag)
        sim.run()
        assert order == ["a", "b", "c"]
