"""Tests for cluster statistics accounting."""

import pytest

from repro.cluster.cluster import ClusterStats
from repro.cluster.metrics import ThroughputWindow


class TestClusterStats:
    def test_per_vcu_rate(self):
        stats = ClusterStats(throughput=ThroughputWindow(start_time=0.0))
        stats.throughput.record(10.0, 500.0)
        stats.throughput.record(20.0, 500.0)
        assert stats.per_vcu_mpix_per_second(now=20.0, vcu_count=5) == pytest.approx(10.0)

    def test_per_vcu_rate_guards(self):
        stats = ClusterStats(throughput=ThroughputWindow(start_time=5.0))
        assert stats.per_vcu_mpix_per_second(now=5.0, vcu_count=4) == 0.0
        assert stats.per_vcu_mpix_per_second(now=10.0, vcu_count=0) == 0.0

    def test_defaults_zeroed(self):
        stats = ClusterStats()
        assert stats.completed_steps == 0
        assert stats.software_fallbacks == 0
        assert stats.corrupt_escaped == 0
        assert stats.graph_latencies == []
        assert stats.per_vcu_megapixels == {}
