"""Tests for SLO admission control and class-ordered shedding."""

import pytest

from repro.control.admission import AdmissionConfig, AdmissionController
from repro.control.jobs import Job, JobRequest, SloClass
from repro.control.queue import ClassQueue


def make_job(job_id, cls):
    return Job(JobRequest(
        job_id=job_id, slo_class=cls, origin=(0.0, 0.0),
        arrival_time=0.0, service_seconds=10.0,
    ))


class TestConfig:
    def test_defaults_are_class_ordered(self):
        config = AdmissionConfig()
        assert (config.batch_ceiling < config.upload_ceiling
                < config.live_ceiling)

    def test_misordered_ceilings_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(live_ceiling=1.0, upload_ceiling=2.0)
        with pytest.raises(ValueError):
            AdmissionConfig(batch_ceiling=0.0)

    def test_ceiling_for(self):
        config = AdmissionConfig(live_ceiling=8, upload_ceiling=4,
                                 batch_ceiling=2)
        assert config.ceiling_for(SloClass.LIVE) == 8
        assert config.ceiling_for(SloClass.UPLOAD) == 4
        assert config.ceiling_for(SloClass.BATCH) == 2


class TestDecide:
    def test_load_factor(self):
        assert AdmissionController.load_factor(30, 20) == 1.5
        assert AdmissionController.load_factor(5, 0) == float("inf")

    def test_admits_below_ceiling_sheds_at_it(self):
        ctrl = AdmissionController(AdmissionConfig(batch_ceiling=1.5))
        batch = make_job("b", SloClass.BATCH)
        assert ctrl.decide(batch, 1.49)
        assert not ctrl.decide(batch, 1.5)
        assert ctrl.admitted[SloClass.BATCH] == 1
        assert ctrl.shed[SloClass.BATCH] == 1

    def test_classes_shed_in_strict_order(self):
        ctrl = AdmissionController()
        live = make_job("l", SloClass.LIVE)
        upload = make_job("u", SloClass.UPLOAD)
        batch = make_job("b", SloClass.BATCH)
        # At 2x load: batch sheds, upload and live still admitted.
        assert not ctrl.decide(batch, 2.0)
        assert ctrl.decide(upload, 2.0)
        assert ctrl.decide(live, 2.0)
        # At 5x: only live survives.
        assert not ctrl.decide(upload, 5.0)
        assert ctrl.decide(live, 5.0)


class TestShedExcess:
    def _overloaded(self, batch=6, upload=2, live=2):
        """A queue holding ``batch+upload+live`` jobs against 2 slots."""
        queue = ClassQueue()
        jobs = []
        for cls, count in ((SloClass.BATCH, batch), (SloClass.UPLOAD, upload),
                           (SloClass.LIVE, live)):
            for i in range(count):
                job = make_job(f"{cls.label}{i}", cls)
                jobs.append(job)
                queue.push(job)
        return queue, jobs

    def test_sheds_batch_before_upload_before_live(self):
        ctrl = AdmissionController(AdmissionConfig(
            live_ceiling=8.0, upload_ceiling=2.0, batch_ceiling=1.5,
        ))
        queue, _ = self._overloaded(batch=6, upload=4, live=2)
        capacity = 2
        shed = ctrl.shed_excess([queue], lambda: len(queue), capacity)
        # 12 jobs / 2 slots = 6.0: all batch goes first (still 3.0 after),
        # then upload trims until the load fits under its 2.0 ceiling.
        classes = [job.slo_class for job in shed]
        assert SloClass.LIVE not in classes
        assert SloClass.UPLOAD in classes
        first_upload = classes.index(SloClass.UPLOAD)
        assert all(c is SloClass.BATCH for c in classes[:first_upload])
        assert all(c is SloClass.UPLOAD for c in classes[first_upload:])
        assert queue.depth(SloClass.BATCH) == 0
        assert len(queue) / capacity < 2.0
        assert queue.depth(SloClass.LIVE) == 2  # live untouched

    def test_round_robins_across_queues(self):
        ctrl = AdmissionController(AdmissionConfig(batch_ceiling=1.0))
        q1, _ = self._overloaded(batch=3, upload=0, live=0)
        q2, _ = self._overloaded(batch=3, upload=0, live=0)
        total = lambda: len(q1) + len(q2)
        shed = ctrl.shed_excess([q1, q2], total, 2)
        assert len(shed) == 5  # 6 -> 1 job: 0.5 < 1.0 ceiling
        assert abs(len(q1) - len(q2)) <= 1  # fairness across queues

    def test_blackout_parks_instead_of_shedding(self):
        ctrl = AdmissionController()
        queue, _ = self._overloaded()
        assert ctrl.shed_excess([queue], lambda: len(queue), 0) == []
        assert len(queue) == 10  # untouched

    def test_no_shedding_when_load_fits(self):
        ctrl = AdmissionController()
        queue, _ = self._overloaded(batch=1, upload=0, live=0)
        assert ctrl.shed_excess([queue], lambda: len(queue), 100) == []
