"""Unit and property tests for the transform/quantization stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.transform import (
    MAX_QP,
    dct_matrix,
    dequantize,
    forward_dct,
    inverse_dct,
    qp_to_lambda,
    qp_to_step,
    quantize,
    transform_rd,
)


def test_dct_matrix_is_orthonormal():
    for size in (4, 8, 16):
        basis = dct_matrix(size)
        np.testing.assert_allclose(basis @ basis.T, np.eye(size), atol=1e-10)


def test_dct_roundtrip_lossless():
    rng = np.random.default_rng(0)
    block = rng.uniform(0, 255, (8, 8))
    np.testing.assert_allclose(inverse_dct(forward_dct(block)), block, atol=1e-9)


def test_dct_dc_of_flat_block():
    block = np.full((8, 8), 100.0)
    coefficients = forward_dct(block)
    assert coefficients[0, 0] == pytest.approx(800.0)  # 100 * size
    assert np.abs(coefficients[1:, :]).max() < 1e-9
    assert np.abs(coefficients[0, 1:]).max() < 1e-9


def test_dct_rejects_non_square():
    with pytest.raises(ValueError):
        forward_dct(np.zeros((4, 8)))


def test_qp_step_doubles_every_6():
    assert qp_to_step(30) / qp_to_step(24) == pytest.approx(2.0)


def test_qp_bounds():
    with pytest.raises(ValueError):
        qp_to_step(-1)
    with pytest.raises(ValueError):
        qp_to_step(MAX_QP + 1)


def test_lambda_grows_with_qp():
    assert qp_to_lambda(40) > qp_to_lambda(20)


def test_quantize_roundtrip_error_bounded():
    rng = np.random.default_rng(1)
    block = rng.uniform(-50, 50, (8, 8))
    qp = 28
    step = qp_to_step(qp)
    recon = dequantize(quantize(block, qp), qp)
    assert np.abs(recon - block).max() <= step / 2 + 1e-9


def test_higher_qp_more_distortion_fewer_levels():
    rng = np.random.default_rng(2)
    residual = rng.normal(0, 20, (8, 8))
    _, _, d_low = transform_rd(residual, qp=10)
    levels_hi, _, d_high = transform_rd(residual, qp=45)
    assert d_high >= d_low
    levels_lo, _, _ = transform_rd(residual, qp=10)
    assert np.count_nonzero(levels_hi) <= np.count_nonzero(levels_lo)


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, (8, 8), elements=st.floats(-128, 128, width=16)),
    st.integers(0, 51),
)
def test_transform_rd_distortion_bound_property(residual, qp):
    """Reconstruction error is bounded by half a quantization step per
    coefficient (Parseval: SSE equals coefficient-domain SSE)."""
    _, recon, distortion = transform_rd(residual, qp)
    step = qp_to_step(qp)
    bound = 64 * (step / 2) ** 2 + 1e-6
    assert distortion <= bound
    assert distortion == pytest.approx(float(np.sum((residual - recon) ** 2)), rel=1e-9, abs=1e-9)
