"""Tests for the CPU/GPU baselines and the TCO/power models."""

import pytest

from repro.baselines import GpuSystem, SkylakeSystem
from repro.tco import (
    SKYLAKE_COST,
    T4_SYSTEM_COST,
    VCU_SYSTEM_8,
    VCU_SYSTEM_20,
    perf_per_tco,
    perf_per_watt,
)
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.vcu.throughput import mot_throughput, vbench_sot_system_throughput
from repro.video.frame import resolution


class TestSkylake:
    def test_table1_anchors(self):
        cpu = SkylakeSystem()
        assert cpu.machine_throughput("h264") == pytest.approx(714.0)
        assert cpu.machine_throughput("vp9") == pytest.approx(154.0)

    def test_vp9_much_more_expensive(self):
        cpu = SkylakeSystem()
        assert cpu.vp9_h264_cost_ratio() > 4.0

    def test_vp9_2160p_chunk_costs_about_a_cpu_hour(self):
        # Section 4.5: a 150-frame 2160p chunk takes over a CPU-hour.
        cpu = SkylakeSystem()
        core_hours = cpu.encode_core_seconds("vp9", resolution("2160p"), 150) / 3600
        assert 0.6 <= core_hours <= 1.6

    def test_vp9_2160p_chunk_wall_time_matches_paper(self):
        # ... and ~15 wall-clock minutes on multiple cores.
        cpu = SkylakeSystem()
        minutes = cpu.chunk_wall_seconds("vp9", resolution("2160p"), 150, cores=6) / 60
        assert 10 <= minutes <= 25

    def test_resolution_scaling_h264_mild(self):
        cpu = SkylakeSystem()
        at_4k = cpu.machine_throughput("h264", resolution("2160p"))
        at_1080 = cpu.machine_throughput("h264", resolution("1080p"))
        assert 0.5 < at_4k / at_1080 < 1.0

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            SkylakeSystem().machine_throughput("h265")

    def test_cores_validated(self):
        with pytest.raises(ValueError):
            SkylakeSystem().chunk_wall_seconds("vp9", resolution("1080p"), 30, cores=0)


class TestGpu:
    def test_table1_anchor(self):
        assert GpuSystem().machine_throughput("h264") == pytest.approx(2484.0)

    def test_no_vp9_encoder(self):
        gpu = GpuSystem()
        assert not gpu.supports("vp9")
        with pytest.raises(ValueError):
            gpu.machine_throughput("vp9")

    def test_no_mot(self):
        assert not GpuSystem().mot_supported()


class TestPerfPerTco:
    """Table 1's normalized perf/TCO column, within 12% of the paper."""

    @pytest.mark.parametrize(
        "codec,system,vcus,paper",
        [
            ("h264", VCU_SYSTEM_8, 8, 4.4),
            ("h264", VCU_SYSTEM_20, 20, 7.0),
            ("vp9", VCU_SYSTEM_8, 8, 20.8),
            ("vp9", VCU_SYSTEM_20, 20, 33.3),
        ],
    )
    def test_vcu_systems(self, codec, system, vcus, paper):
        base = SkylakeSystem().machine_throughput(codec)
        ours = vbench_sot_system_throughput(DEFAULT_VCU_SPEC, codec, vcus)
        ratio = perf_per_tco(ours, system, base)
        assert ratio == pytest.approx(paper, rel=0.12)

    def test_gpu_modest_improvement(self):
        base = SkylakeSystem().machine_throughput("h264")
        ratio = perf_per_tco(
            GpuSystem().machine_throughput("h264"), T4_SYSTEM_COST, base
        )
        assert ratio == pytest.approx(1.5, rel=0.12)

    def test_baseline_is_unity(self):
        assert perf_per_tco(714.0, SKYLAKE_COST, 714.0) == pytest.approx(1.0)

    def test_rejects_bad_throughput(self):
        with pytest.raises(ValueError):
            perf_per_tco(0, SKYLAKE_COST, 714.0)


class TestPerfPerWatt:
    def test_h264_sot_matches_paper(self):
        # Section 4.1: 6.7x better perf/watt than the CPU baseline for
        # single-output H.264.
        ours = vbench_sot_system_throughput(DEFAULT_VCU_SPEC, "h264", 20)
        ratio = perf_per_watt(ours, VCU_SYSTEM_20, 714.0, codec="h264")
        assert ratio == pytest.approx(6.7, rel=0.10)

    def test_vp9_mot_matches_paper(self):
        # ... and 68.9x on multi-output VP9.
        per_vcu = mot_throughput(
            DEFAULT_VCU_SPEC, "vp9", EncodingMode.OFFLINE_TWO_PASS, resolution("1080p")
        ).throughput
        ratio = perf_per_watt(per_vcu * 20, VCU_SYSTEM_20, 154.0, codec="vp9")
        assert ratio == pytest.approx(68.9, rel=0.12)

    def test_tco_structure(self):
        assert VCU_SYSTEM_20.capex() > VCU_SYSTEM_8.capex()
        assert VCU_SYSTEM_20.tco() > VCU_SYSTEM_8.tco() > SKYLAKE_COST.tco()
