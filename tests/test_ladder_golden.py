"""Golden-trace regression tests for the live-segment drill.

A fixed-seed mini live-ladder run (dripping live legs + bursting
uploads + a regional outage + Poisson device faults) must serialize to a
**byte-identical** JSONL trace and scorecard on every run, on every
machine, at any ``--jobs``.  The golden copy lives in
``tests/golden/live_ladder_trace.jsonl``; any change to segment-release
ordering, barrier timing, span attributes, float rounding, or the
simulator's tie-breaking shows up here as a diff.

To intentionally re-baseline after a behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_ladder_golden.py
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import obs
from repro.control.live_ladder import LiveLadderConfig, run_live_ladder

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "live_ladder_trace.jsonl"
)

DRILL_CONFIG = LiveLadderConfig(
    horizon_seconds=180.0,
    live_rate=0.02,
    upload_rate=0.03,
    live_duration_seconds=20.0,
    outage=True,
    hang_rate_per_hour=2.0,
    corruption_rate_per_hour=2.0,
)
DRILL_SEED = 13


def _golden_drill():
    """One fixed-seed drill; returns (trace_jsonl, scorecard_json, result)."""
    with obs.installed() as hub:
        result = run_live_ladder(DRILL_CONFIG, seed=DRILL_SEED)
        trace = hub.trace.to_jsonl()
    card = json.dumps(result.scorecard, indent=2, sort_keys=True)
    return trace, card, result


def test_same_seed_runs_produce_bit_identical_traces():
    trace_a, card_a, _ = _golden_drill()
    trace_b, card_b, _ = _golden_drill()
    assert trace_a == trace_b
    assert card_a == card_b


def test_trace_matches_checked_in_golden():
    trace, _, _ = _golden_drill()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(trace, encoding="utf-8")
        pytest.skip(f"golden re-baselined at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "golden trace missing -- regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = GOLDEN_PATH.read_text(encoding="utf-8")
    assert trace == golden, (
        "trace diverged from tests/golden/live_ladder_trace.jsonl; if the "
        "change is intentional, re-baseline with REPRO_UPDATE_GOLDEN=1"
    )


def test_golden_drill_actually_exercised_the_streaming_ladder():
    # Guard against the fixture degenerating into a happy-path run that
    # locks down nothing interesting.
    trace, _, result = _golden_drill()
    card = result.scorecard
    assert card["streams.completed"] == card["streams.started"] > 0
    assert card["segments.lost"] == 0
    assert card["deadline.tracked"] > 0
    assert card["cluster.hangs"] >= 1
    assert card["fallback.opportunistic"] >= 1
    assert card["conservation.ok"] is True
    kinds = {line.split('"kind":"')[1].split('"')[0]
             for line in trace.splitlines()}
    for expected in ("stream", "segment", "manifest", "fallback",
                     "step", "hang", "retry"):
        assert expected in kinds, f"no {expected!r} spans in the drill"
