"""Tests for the job state machine, class queues, and the durable ledger."""

import json

import pytest

from repro.control.jobs import (
    CLASS_ORDER,
    SHED_ORDER,
    TERMINAL_STATES,
    IllegalTransition,
    Job,
    JobRequest,
    JobState,
    RetryPolicy,
    SloClass,
)
from repro.control.queue import ClassQueue, DeadLetterLedger, JobLedger


def make_job(job_id="j1", cls=SloClass.UPLOAD, arrival=0.0, service=10.0):
    return Job(JobRequest(
        job_id=job_id, slo_class=cls, origin=(0.0, 0.0),
        arrival_time=arrival, service_seconds=service,
    ))


class TestStateMachine:
    def test_happy_path(self):
        job = make_job()
        job.transition(JobState.ADMITTED, 1.0)
        job.transition(JobState.RUNNING, 2.0)
        job.transition(JobState.DONE, 12.0)
        assert job.terminal
        assert job.completed_at() == 12.0
        assert [s for _, s in job.history] == [
            JobState.QUEUED, JobState.ADMITTED, JobState.RUNNING, JobState.DONE,
        ]

    def test_illegal_transition_raises(self):
        job = make_job()
        with pytest.raises(IllegalTransition):
            job.transition(JobState.RUNNING, 1.0)  # must be admitted first

    def test_terminal_states_are_final(self):
        for terminal in TERMINAL_STATES:
            job = make_job()
            if terminal is JobState.SHED:
                job.transition(JobState.SHED, 1.0)
            else:
                job.transition(JobState.ADMITTED, 1.0)
                job.transition(JobState.RUNNING, 2.0)
                job.transition(terminal, 3.0)
            for target in JobState:
                with pytest.raises(IllegalTransition):
                    job.transition(target, 4.0)

    def test_retry_loop_is_legal(self):
        job = make_job()
        job.transition(JobState.ADMITTED, 1.0)
        job.transition(JobState.RUNNING, 1.0)
        job.transition(JobState.RETRY_WAIT, 5.0)
        job.transition(JobState.QUEUED, 7.0)
        job.transition(JobState.ADMITTED, 8.0)
        job.transition(JobState.RUNNING, 8.0)
        job.transition(JobState.DONE, 18.0)
        assert job.terminal

    def test_time_accounting_splits_queue_and_backoff(self):
        job = make_job(arrival=10.0)
        job.transition(JobState.ADMITTED, 13.0)   # 3 s queued
        job.transition(JobState.RUNNING, 14.0)    # 1 s admitted
        job.transition(JobState.RETRY_WAIT, 20.0)
        job.transition(JobState.QUEUED, 24.0)     # 4 s backoff
        job.transition(JobState.ADMITTED, 26.0)   # 2 s queued
        job.transition(JobState.RUNNING, 26.0)
        job.transition(JobState.DONE, 30.0)
        assert job.queue_seconds == pytest.approx(6.0)
        assert job.retry_wait_seconds == pytest.approx(4.0)

    def test_time_moving_backwards_rejected(self):
        job = make_job(arrival=5.0)
        with pytest.raises(ValueError):
            job.transition(JobState.ADMITTED, 4.0)

    def test_class_orders_are_inverses(self):
        assert tuple(reversed(CLASS_ORDER)) == SHED_ORDER
        assert SloClass.LIVE < SloClass.UPLOAD < SloClass.BATCH


class TestRetryPolicy:
    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(base_delay_seconds=2.0, multiplier=2.0,
                             max_delay_seconds=120.0, max_attempts=10)
        assert [policy.delay_for(n) for n in (1, 2, 3, 4)] == [2, 4, 8, 16]

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay_seconds=2.0, max_delay_seconds=5.0)
        assert policy.delay_for(8) == 5.0

    def test_exhaustion_boundary(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


class TestClassQueue:
    def test_pop_serves_live_first_fifo_within_class(self):
        queue = ClassQueue()
        batch = make_job("b1", SloClass.BATCH)
        live1 = make_job("l1", SloClass.LIVE)
        live2 = make_job("l2", SloClass.LIVE)
        for job in (batch, live1, live2):
            queue.push(job)
        assert [queue.pop().job_id for _ in range(3)] == ["l1", "l2", "b1"]
        assert queue.pop() is None

    def test_shed_removes_newest_of_lowest_class(self):
        queue = ClassQueue()
        for job_id, cls in (
            ("b1", SloClass.BATCH), ("b2", SloClass.BATCH),
            ("u1", SloClass.UPLOAD), ("l1", SloClass.LIVE),
        ):
            queue.push(make_job(job_id, cls))
        assert queue.shed_one(SloClass.BATCH).job_id == "b2"  # newest batch
        assert queue.shed_one(SloClass.BATCH).job_id == "b1"
        # Sweep limited to BATCH never touches upload or live.
        assert queue.shed_one(SloClass.BATCH) is None
        assert queue.shed_one(SloClass.UPLOAD).job_id == "u1"
        assert queue.shed_one(SloClass.LIVE).job_id == "l1"

    def test_drain_is_priority_then_fifo(self):
        queue = ClassQueue()
        for job_id, cls in (
            ("b1", SloClass.BATCH), ("l1", SloClass.LIVE),
            ("u1", SloClass.UPLOAD), ("l2", SloClass.LIVE),
        ):
            queue.push(make_job(job_id, cls))
        assert [j.job_id for j in queue.drain()] == ["l1", "l2", "u1", "b1"]
        assert len(queue) == 0 and not queue

    def test_depths(self):
        queue = ClassQueue()
        queue.push(make_job("l1", SloClass.LIVE))
        assert queue.depth(SloClass.LIVE) == 1
        assert queue.depths()[SloClass.BATCH] == 0


class TestLedger:
    def test_duplicate_ids_rejected(self):
        ledger = JobLedger()
        ledger.register(make_job("dup"))
        with pytest.raises(ValueError):
            ledger.register(make_job("dup"))

    def test_conservation_flags_nonterminal_jobs(self):
        ledger = JobLedger()
        done, stuck = make_job("done"), make_job("stuck")
        ledger.register(done)
        ledger.register(stuck)
        ledger.transition(done, JobState.ADMITTED, 1.0, "t")
        ledger.transition(done, JobState.RUNNING, 1.0, "t")
        ledger.transition(done, JobState.DONE, 2.0, "t")
        report = ledger.conservation_report()
        assert report["submitted"] == report["accounted"] == 2
        assert report["nonterminal"] == ["stuck"]
        assert not report["ok"]
        ledger.transition(stuck, JobState.SHED, 3.0, "t")
        assert ledger.conservation_report()["ok"]

    def test_transition_records_carry_reasons(self):
        ledger = JobLedger()
        job = make_job()
        ledger.register(job)
        ledger.transition(job, JobState.SHED, 1.0, "overload:arrival")
        assert ledger.records[0].from_state is None
        assert ledger.records[-1].reason == "overload:arrival"
        assert ledger.records[-1].to_state is JobState.SHED

    def test_write_jsonl_round_trips(self, tmp_path):
        ledger = JobLedger()
        job = make_job()
        ledger.register(job)
        ledger.transition(job, JobState.ADMITTED, 1.0, "arrival")
        path = tmp_path / "ledger.jsonl"
        ledger.write_jsonl(str(path))
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[1]["to"] == "admitted" and lines[1]["from"] == "queued"

    def test_dead_letters_capture_history(self):
        letters = DeadLetterLedger()
        job = make_job("dead", SloClass.BATCH)
        job.transition(JobState.ADMITTED, 1.0)
        job.transition(JobState.RUNNING, 1.0)
        job.attempts = 4
        job.transition(JobState.FAILED, 9.0)
        entry = letters.record(job, 9.0, "execution_fault")
        assert len(letters) == 1
        assert entry.attempts == 4
        assert entry.history[0] == (0.0, "queued")
        assert entry.history[-1] == (9.0, "failed")
