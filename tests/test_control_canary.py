"""Firmware canary rollout: state machine, detection, and both verdicts.

The rollout state machine is covered transition by transition (including
the illegal ones), and the scenario is run end to end for both release
candidates: rc1 carries a real regression the scorecard deltas must
catch and roll back; rc2 soaks clean and must promote.  Both runs gate
the job ledger's conservation invariant and the static scorecard keys.
"""

from __future__ import annotations

import pytest

from repro.control.canary import (
    LEGAL_ROLLOUT_TRANSITIONS,
    CanaryConfig,
    FirmwareRollout,
    IllegalRolloutTransition,
    RolloutStage,
    run_canary_rollout,
    scorecard_keys,
)
from repro.control.catalog import CANARY_SEED, CANARY_SMOKE_HORIZON_SECONDS
from repro.vcu.firmware import firmware_release


class TestRolloutStateMachine:
    def test_table_covers_every_stage(self):
        assert set(LEGAL_ROLLOUT_TRANSITIONS) == set(RolloutStage)
        # ROLLED_BACK and PROMOTED are terminal: a respin is a new rollout.
        assert LEGAL_ROLLOUT_TRANSITIONS[RolloutStage.ROLLED_BACK] == ()
        assert LEGAL_ROLLOUT_TRANSITIONS[RolloutStage.PROMOTED] == ()

    def test_rollback_path(self):
        rollout = FirmwareRollout(firmware_release("fw-1.1.0-rc1"))
        assert rollout.stage is RolloutStage.BASELINE
        rollout.stage_canary(at=10.0)
        assert rollout.stage is RolloutStage.CANARY
        rollout.roll_back(at=20.0, reason="throughput -0.5")
        assert rollout.stage is RolloutStage.ROLLED_BACK
        assert [(t, s) for t, s, _ in rollout.log] == [
            (10.0, "canary"), (20.0, "rolled_back"),
        ]

    def test_promote_path(self):
        rollout = FirmwareRollout(firmware_release("fw-1.1.0-rc2"))
        rollout.stage_canary(at=5.0)
        rollout.promote(at=15.0, reason="clean soak window")
        assert rollout.stage is RolloutStage.PROMOTED

    def test_cannot_stage_twice(self):
        rollout = FirmwareRollout(firmware_release("fw-1.1.0-rc1"))
        rollout.stage_canary(at=1.0)
        with pytest.raises(IllegalRolloutTransition):
            rollout.stage_canary(at=2.0)

    def test_cannot_judge_before_staging(self):
        rollout = FirmwareRollout(firmware_release("fw-1.1.0-rc1"))
        with pytest.raises(IllegalRolloutTransition):
            rollout.roll_back(at=1.0, reason="premature")
        with pytest.raises(IllegalRolloutTransition):
            rollout.promote(at=1.0, reason="premature")

    def test_terminal_stages_reject_everything(self):
        rollout = FirmwareRollout(firmware_release("fw-1.1.0-rc1"))
        rollout.stage_canary(at=1.0)
        rollout.roll_back(at=2.0, reason="regressed")
        with pytest.raises(IllegalRolloutTransition):
            rollout.promote(at=3.0, reason="second thoughts")

    def test_unknown_candidate_rejected_early(self):
        with pytest.raises(KeyError):
            CanaryConfig(candidate="fw-9.9.9")


class TestRegressiveCandidate:
    @pytest.fixture(scope="class")
    def result(self):
        config = CanaryConfig(
            candidate="fw-1.1.0-rc1",
            horizon_seconds=CANARY_SMOKE_HORIZON_SECONDS,
        )
        return run_canary_rollout(config, seed=CANARY_SEED)

    def test_regression_detected_and_rolled_back(self, result):
        card = result.scorecard
        assert card["rollout.regression_detected"] is True
        assert card["rollout.rolled_back"] is True
        assert card["rollout.stage"] == "rolled_back"
        assert result.rollout.stage is RolloutStage.ROLLED_BACK

    def test_regression_is_visible_in_the_deltas(self, result):
        card = result.scorecard
        # rc1 triples the canary slice's per-step overhead: the slice
        # falls well behind baseline on per-VCU throughput.
        assert card["delta.throughput_frac"] > 0.12
        assert (card["slice.canary.mpix_per_vcu_s"]
                < card["slice.baseline.mpix_per_vcu_s"])

    def test_hang_pressure_exercises_health_machine(self, result):
        card = result.scorecard
        assert card["cluster.hangs"] > 0
        assert card["cluster.workers_quarantined"] > 0

    def test_rollback_restores_baseline_overheads(self, result):
        # After rollback every worker is back on its launch-build value.
        for worker in result.cluster.vcu_workers:
            assert worker.step_overhead_seconds == pytest.approx(0.8)

    def test_ledger_conserves_every_job(self, result):
        card = result.scorecard
        assert card["conservation.ok"] is True
        report = result.plane.ledger.conservation_report()
        assert report["ok"] is True
        assert report["nonterminal"] == []

    def test_scorecard_keys_are_exact(self, result):
        assert tuple(sorted(result.scorecard)) == scorecard_keys()


class TestCleanCandidate:
    @pytest.fixture(scope="class")
    def result(self):
        config = CanaryConfig(
            candidate="fw-1.1.0-rc2",
            horizon_seconds=CANARY_SMOKE_HORIZON_SECONDS,
        )
        return run_canary_rollout(config, seed=CANARY_SEED)

    def test_no_regression_promotes(self, result):
        card = result.scorecard
        assert card["rollout.regression_detected"] is False
        assert card["rollout.promoted"] is True
        assert card["rollout.stage"] == "promoted"
        assert result.rollout.stage is RolloutStage.PROMOTED

    def test_promotion_lands_on_baseline_slice(self, result):
        # rc2 is slightly faster than launch; promotion applies it
        # fleet-wide, so every worker now runs below the launch overhead.
        for worker in result.cluster.vcu_workers:
            assert worker.step_overhead_seconds == pytest.approx(0.8 * 0.95)

    def test_ledger_conserves_every_job(self, result):
        assert result.scorecard["conservation.ok"] is True

    def test_determinism_same_seed_same_scorecard(self, result):
        config = CanaryConfig(
            candidate="fw-1.1.0-rc2",
            horizon_seconds=CANARY_SMOKE_HORIZON_SECONDS,
        )
        again = run_canary_rollout(config, seed=CANARY_SEED)
        assert again.scorecard == result.scorecard
