"""Tests for the shared RD-sweep harness."""

import math

import pytest

from repro.codec.profiles import LIBVPX, LIBX264
from repro.harness.rd import DEFAULT_QPS, rd_curve, suite_bd_rates, suite_rd_curves
from repro.video.vbench import vbench_video

TITLE = vbench_video("desktop")
FAST = dict(frame_count=4, proxy_height=36)


class TestRdCurve:
    def test_one_point_per_qp(self):
        points = rd_curve(LIBX264, TITLE, qps=(24, 32, 40), **FAST)
        assert len(points) == 3

    def test_deterministic_per_seed(self):
        a = rd_curve(LIBX264, TITLE, qps=(28, 36), seed=5, **FAST)
        b = rd_curve(LIBX264, TITLE, qps=(28, 36), seed=5, **FAST)
        assert [(p.bitrate, p.psnr) for p in a] == [(p.bitrate, p.psnr) for p in b]

    def test_default_qps_cover_range(self):
        assert len(DEFAULT_QPS) >= 4
        assert min(DEFAULT_QPS) < 24 and max(DEFAULT_QPS) > 40


class TestSuite:
    def test_structure(self):
        curves = suite_rd_curves(
            profiles=(LIBX264, LIBVPX), titles=(TITLE,), qps=(24, 30, 36, 42), **FAST
        )
        assert set(curves) == {"desktop"}
        assert set(curves["desktop"]) == {"libx264", "libvpx"}

    def test_bd_rate_summary(self):
        curves = suite_rd_curves(
            profiles=(LIBX264, LIBVPX), titles=(TITLE,), qps=(22, 28, 34, 40, 46),
            **FAST,
        )
        summary = suite_bd_rates(curves)
        # Only the libvpx-vs-libx264 comparison is computable here...
        assert summary.libvpx_vs_libx264 < -15.0
        # ...and the VCU comparisons come back NaN, not bogus numbers.
        assert math.isnan(summary.vcu_vp9_vs_libvpx)
        assert "desktop" in summary.per_title
