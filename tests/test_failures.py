"""Failure-management tests: injection, screening, black-holing, repair."""

import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.failures import FailureManager, FaultInjector, RepairQueue
from repro.failures.management import blast_radius
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution


def graph(video_id="v1", frames=300):
    return build_transcode_graph(
        video_id=video_id, source=resolution("720p"), total_frames=frames,
        fps=30.0, bucket=PopularityBucket.WARM,
    )


class TestGoldenScreening:
    def test_corrupt_vcu_refused_at_worker_start(self):
        vcu = Vcu(DEFAULT_VCU_SPEC)
        vcu.mark_corrupt()
        worker = VcuWorker(vcu, golden_screening=True)
        assert worker.refused
        assert not worker.available()

    def test_screening_can_be_disabled(self):
        vcu = Vcu(DEFAULT_VCU_SPEC)
        vcu.mark_corrupt()
        worker = VcuWorker(vcu, golden_screening=False)
        assert worker.available()


class TestRetriesAndCorruption:
    def _run(self, integrity_rate, screening, seed=3):
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"f{seed}-vcu{i}") for i in range(3)]
        vcus[0].mark_corrupt()  # fails *after* screening-time in test below
        workers = [VcuWorker(v, golden_screening=screening) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)],
            integrity_check_rate=integrity_rate, seed=seed,
        )
        g = graph()
        cluster.submit(g)
        sim.run()
        return cluster, g

    def test_integrity_checks_catch_and_retry(self):
        cluster, g = self._run(integrity_rate=1.0, screening=False)
        assert g.completed_at is not None
        assert cluster.stats.corrupt_escaped == 0
        assert cluster.stats.retries > 0
        # Retried steps must have landed on a different VCU.
        for step in g.transcode_steps():
            assert not step.corrupt_output

    def test_quarantine_after_detection(self):
        cluster, _ = self._run(integrity_rate=1.0, screening=False)
        corrupt_workers = [w for w in cluster.vcu_workers if w.vcu.corrupt]
        assert all(w.refused for w in corrupt_workers)

    def test_screening_prevents_any_corruption(self):
        cluster, g = self._run(integrity_rate=0.0, screening=True)
        assert cluster.stats.corrupt_escaped == 0
        assert g.completed_at is not None

    def test_escapes_without_checks_or_screening(self):
        # With no integrity checks and no screening, some bad chunks
        # escape -- the residual risk Section 4.4 acknowledges.
        cluster, g = self._run(integrity_rate=0.0, screening=False)
        assert cluster.stats.corrupt_escaped > 0


class TestBlackHoling:
    def test_fast_corrupt_vcu_attracts_work_without_mitigation(self):
        # A failing-but-fast VCU completes steps quicker, so first-fit
        # keeps it loaded; record its share of processed chunks.
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"bh-vcu{i}") for i in range(2)]
        vcus[0].mark_corrupt()
        workers = [VcuWorker(v, golden_screening=False) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)], integrity_check_rate=0.0, seed=1
        )
        graphs = [graph(f"v{i}") for i in range(4)]
        for g in graphs:
            cluster.submit(g)
        sim.run()
        processed = [s.processed_by for g in graphs for s in g.transcode_steps()]
        share = blast_radius(processed, "bh-vcu0") / len(processed)
        assert share > 0.5  # the bad VCU black-holed most traffic

    def test_blast_radius_counts(self):
        assert blast_radius(["a", "b", "a", None], "a") == 2


class TestFaultInjector:
    def test_corrupt_at_fires_on_schedule(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC)
        injector = FaultInjector(sim, [vcu])
        injector.corrupt_at(5.0, vcu)
        sim.run(until=4.0)
        assert not vcu.corrupt
        sim.run()
        assert vcu.corrupt

    def test_hard_faults_recorded_in_telemetry(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC)
        injector = FaultInjector(sim, [vcu])
        injector.hard_fault_at(1.0, vcu, FaultKind.ECC_UNCORRECTABLE, count=3)
        sim.run()
        assert vcu.telemetry.should_disable()

    def test_random_corruptions_deterministic_per_seed(self):
        def events(seed):
            sim = Simulator()
            vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"r{seed}-{i}") for i in range(10)]
            injector = FaultInjector(sim, vcus, seed=seed)
            return [(e.at_time) for e in injector.random_corruptions(0.5, until=3600)]

        assert events(7) == events(7)

    def test_zero_rate_injects_nothing(self):
        sim = Simulator()
        injector = FaultInjector(sim, [Vcu(DEFAULT_VCU_SPEC)])
        assert injector.random_corruptions(0.0, until=100) == []


class TestRegionalOutage:
    def _fleet(self, n_hosts=3):
        sim = Simulator()
        hosts = [VcuHost(host_id=f"ro-{i}") for i in range(n_hosts)]
        vcus = [vcu for host in hosts for vcu in host.vcus]
        return sim, hosts, FaultInjector(sim, vcus)

    def test_every_vcu_wedges_then_clears_together(self):
        sim, hosts, injector = self._fleet()
        events = injector.regional_outage(10.0, hosts, duration=50.0)
        assert len(events) == sum(len(h.vcus) for h in hosts)
        assert all(e.kind == "hang" for e in events)
        sim.run(until=9.0)
        assert not any(v.hung for h in hosts for v in h.vcus)
        sim.run(until=30.0)
        assert all(v.hung for h in hosts for v in h.vcus)
        sim.run()  # outage lifts at t=60: a single restoration event
        assert sim.now == pytest.approx(60.0)
        assert not any(v.hung for h in hosts for v in h.vcus)

    def test_stagger_rolls_across_hosts(self):
        sim, hosts, injector = self._fleet()
        injector.regional_outage(0.0, hosts, duration=100.0,
                                 stagger_seconds=10.0)
        sim.run(until=15.0)  # host 0 (t=0) and host 1 (t=10) hit, not host 2
        assert all(v.hung for v in hosts[0].vcus)
        assert all(v.hung for v in hosts[1].vcus)
        assert not any(v.hung for v in hosts[2].vcus)
        sim.run()
        assert not any(v.hung for h in hosts for v in h.vcus)

    def test_validation(self):
        sim, hosts, injector = self._fleet()
        with pytest.raises(ValueError):
            injector.regional_outage(0.0, hosts, duration=0.0)
        with pytest.raises(ValueError):
            injector.regional_outage(0.0, [], duration=10.0)
        with pytest.raises(ValueError):
            # Third host would come up at t=20, after the t=15 clear.
            injector.regional_outage(0.0, hosts, duration=15.0,
                                     stagger_seconds=10.0)


class TestFleetManagement:
    def test_sweep_disables_and_queues_repair(self):
        hosts = [VcuHost() for _ in range(2)]
        manager = FailureManager(hosts)
        # Cross the host fault budget on host 0.
        for vcu in hosts[0].vcus[:6]:
            vcu.telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
        disabled = manager.sweep()
        assert len(disabled) == 6
        assert hosts[0].unusable
        assert manager.available_vcu_count() == 20  # only host 1 healthy

    def test_repair_cap_limits_capacity_loss(self):
        hosts = [VcuHost() for _ in range(4)]
        queue = RepairQueue(cap=2)
        accepted = [queue.enqueue(h) for h in hosts]
        assert accepted == [True, True, False, False]

    def test_repair_restores_host(self):
        host = VcuHost()
        host.unusable = True
        host.vcus[0].disable()
        queue = RepairQueue(cap=1)
        queue.enqueue(host)
        queue.start_repairs()
        queue.finish_repair(host)
        assert not host.unusable
        assert len(host.healthy_vcus()) == 20

    def test_capacity_fraction(self):
        hosts = [VcuHost()]
        manager = FailureManager(hosts)
        assert manager.fleet_capacity_fraction() == 1.0
        hosts[0].vcus[0].disable()
        assert manager.fleet_capacity_fraction() == pytest.approx(0.95)
