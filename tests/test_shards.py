"""The shard manifest and splitter must always partition the suite.

These tests keep ``tests/shards.json`` honest: every test file is
assigned to exactly one valid shard, no stale entries linger after a
file is removed, and the hash fallback (used for files added without a
manifest edit, or when the shard count changes) still partitions.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.conftest import (
    SHARDS_MANIFEST,
    load_shard_manifest,
    parse_shard_spec,
    shard_of,
)

TESTS_DIR = Path(__file__).resolve().parent


def suite_files():
    return sorted(p.name for p in TESTS_DIR.glob("test_*.py"))


class TestManifest:
    def test_manifest_exists_with_positive_count(self):
        manifest = load_shard_manifest()
        assert manifest["count"] >= 2  # sharding that doesn't shard is a lie

    def test_every_test_file_is_assigned(self):
        assigned = load_shard_manifest()["assignments"]
        missing = [name for name in suite_files() if name not in assigned]
        assert not missing, (
            f"add {missing} to {SHARDS_MANIFEST.name} (pick the lightest shard)"
        )

    def test_no_stale_assignments(self):
        manifest = load_shard_manifest()
        existing = suite_files()
        stale = sorted(name for name in manifest["assignments"]
                       if name not in existing)
        assert not stale, f"remove deleted files from shards.json: {stale}"

    def test_assignments_are_valid_shard_ids(self):
        manifest = load_shard_manifest()
        count = manifest["count"]
        for name in sorted(manifest["assignments"]):
            shard = manifest["assignments"][name]
            assert 1 <= shard <= count, f"{name}: shard {shard} out of 1..{count}"

    def test_every_shard_gets_work(self):
        manifest = load_shard_manifest()
        loads = {shard: 0 for shard in range(1, manifest["count"] + 1)}
        for name in suite_files():
            loads[shard_of(name, manifest, manifest["count"])] += 1
        assert all(loads.values()), f"empty shard in {loads}"


class TestSplitter:
    def test_manifest_assignment_partitions(self):
        manifest = load_shard_manifest()
        count = manifest["count"]
        for name in suite_files():
            owners = [s for s in range(1, count + 1)
                      if shard_of(name, manifest, count) == s]
            assert len(owners) == 1

    def test_unlisted_file_falls_back_to_stable_hash(self):
        manifest = load_shard_manifest()
        count = manifest["count"]
        shard = shard_of("test_brand_new_subsystem.py", manifest, count)
        assert 1 <= shard <= count
        assert shard == shard_of("test_brand_new_subsystem.py", manifest, count)

    def test_count_mismatch_ignores_manifest(self):
        manifest = {"count": 3, "assignments": {"test_x.py": 3}}
        # Asked for 2 shards: the 3-way manifest no longer applies, but
        # the hash fallback still yields a valid 1..2 shard.
        assert shard_of("test_x.py", manifest, 2) in (1, 2)

    def test_parse_shard_spec_roundtrip(self):
        assert parse_shard_spec("1/3") == (1, 3)
        assert parse_shard_spec("3/3") == (3, 3)

    @pytest.mark.parametrize("bad", ["0/3", "4/3", "3", "a/b", "1/0", "", "1/"])
    def test_parse_shard_spec_rejects_malformed(self, bad):
        with pytest.raises(pytest.UsageError):
            parse_shard_spec(bad)

    def test_shards_cover_the_whole_suite(self):
        # Partition property over the real manifest: shard selections
        # union back to the full file list with no overlap.
        manifest = load_shard_manifest()
        count = manifest["count"]
        files = suite_files()
        union = []
        for shard in range(1, count + 1):
            union.extend(
                name for name in files if shard_of(name, manifest, count) == shard
            )
        assert sorted(union) == files
