"""Throughput-model tests against Table 1 and Section 4.1/4.2 anchors."""

import pytest

from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.vcu.throughput import (
    decode_passes,
    mot_throughput,
    sot_throughput,
    vbench_sot_system_throughput,
)
from repro.video.frame import resolution

SPEC = DEFAULT_VCU_SPEC
OFFLINE = EncodingMode.OFFLINE_TWO_PASS


class TestTable1Anchors:
    @pytest.mark.parametrize(
        "codec,vcus,paper", [("h264", 8, 5973), ("h264", 20, 14932),
                             ("vp9", 8, 6122), ("vp9", 20, 15306)]
    )
    def test_system_throughput_matches_table1(self, codec, vcus, paper):
        ours = vbench_sot_system_throughput(SPEC, codec, vcus)
        assert ours == pytest.approx(paper, rel=0.01)

    def test_offline_sot_is_encoder_limited(self):
        breakdown = sot_throughput(SPEC, "h264", OFFLINE, resolution("1080p"))
        assert breakdown.binding_constraint == "encoder"


class TestMotVsSot:
    @pytest.mark.parametrize("codec", ["h264", "vp9"])
    def test_mot_is_1_2_to_1_3x_sot(self, codec):
        sot = sot_throughput(SPEC, codec, OFFLINE, resolution("1080p")).throughput
        mot = mot_throughput(SPEC, codec, OFFLINE, resolution("1080p")).throughput
        assert 1.2 <= mot / sot <= 1.3

    def test_mot_decodes_once_per_pass(self):
        # The MOT decoder limit should not depend on the ladder size.
        one = mot_throughput(
            SPEC, "h264", OFFLINE, resolution("1080p"), outputs=[resolution("1080p")]
        )
        full = mot_throughput(SPEC, "h264", OFFLINE, resolution("1080p"))
        # Per *input* pixel the decode demand is identical; scaling to the
        # bigger output set only raises the decoder-limited throughput.
        assert full.decoder_limit > one.decoder_limit

    def test_mot_requires_outputs(self):
        with pytest.raises(ValueError):
            mot_throughput(SPEC, "h264", OFFLINE, resolution("1080p"), outputs=[])


class TestModeBehaviour:
    def test_offline_mode_decodes_twice(self):
        assert decode_passes(EncodingMode.OFFLINE_TWO_PASS) == 2
        assert decode_passes(EncodingMode.LOW_LATENCY_ONE_PASS) == 1

    def test_realtime_much_faster_than_offline(self):
        rt = sot_throughput(
            SPEC, "h264", EncodingMode.LOW_LATENCY_ONE_PASS, resolution("2160p")
        ).throughput
        off = sot_throughput(SPEC, "h264", OFFLINE, resolution("2160p")).throughput
        assert rt > 1.9 * off

    def test_disabling_reference_compression_hurts_dram_limit(self):
        with_fbc = sot_throughput(SPEC, "h264", OFFLINE, resolution("2160p"))
        without = sot_throughput(
            SPEC, "h264", OFFLINE, resolution("2160p"), reference_compression=False
        )
        assert without.dram_limit < with_fbc.dram_limit
