"""Unit tests for intra prediction and motion search."""

import numpy as np
import pytest

from repro.codec.prediction import (
    MotionVector,
    best_inter,
    best_intra,
    intra_predict,
    motion_search,
    sample_block,
)


def _plane(height=32, width=32, seed=0):
    return np.random.default_rng(seed).uniform(0, 255, (height, width))


def _smooth_plane(height=32, width=32, seed=0):
    """A textured-but-smooth plane so SAD landscapes have a clean minimum."""
    rough = np.random.default_rng(seed).uniform(0, 255, (height, width))
    padded = np.pad(rough, 2, mode="wrap")
    out = np.zeros_like(rough)
    for dy in range(5):
        for dx in range(5):
            out += padded[dy : dy + height, dx : dx + width]
    return out / 25.0


class TestIntra:
    def test_dc_without_neighbours_is_mid_grey(self):
        recon = np.zeros((16, 16))
        prediction = intra_predict(recon, 0, 0, 8, "dc")
        np.testing.assert_allclose(prediction, 128.0)

    def test_dc_uses_neighbour_mean(self):
        recon = np.zeros((16, 16))
        recon[3, 4:12] = 100.0  # top row of block at (4,4)
        recon[4:12, 3] = 50.0  # left column
        prediction = intra_predict(recon, 4, 4, 8, "dc")
        np.testing.assert_allclose(prediction, 75.0)

    def test_vertical_copies_top_row(self):
        recon = np.zeros((16, 16))
        recon[3, 4:12] = np.arange(8)
        prediction = intra_predict(recon, 4, 4, 8, "vertical")
        np.testing.assert_array_equal(prediction[0], np.arange(8))
        np.testing.assert_array_equal(prediction[7], np.arange(8))

    def test_horizontal_copies_left_column(self):
        recon = np.zeros((16, 16))
        recon[4:12, 3] = np.arange(8)
        prediction = intra_predict(recon, 4, 4, 8, "horizontal")
        np.testing.assert_array_equal(prediction[:, 0], np.arange(8))
        np.testing.assert_array_equal(prediction[:, 7], np.arange(8))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            intra_predict(np.zeros((8, 8)), 0, 0, 4, "wavelet")

    def test_best_intra_picks_lower_sad(self):
        recon = np.zeros((16, 16))
        recon[3, 4:12] = 200.0
        block = np.full((8, 8), 200.0)
        mode, prediction, sad = best_intra(block, recon, 4, 4, 8, candidate_rounds=2)
        assert mode == "vertical"
        assert sad == pytest.approx(0.0)

    def test_candidate_rounds_bound_mode_set(self):
        recon = np.zeros((16, 16))
        block = np.zeros((8, 8))
        # With one round only 3 modes are tried; tm excluded either way here,
        # just verify it runs and returns a valid mode.
        mode, _, _ = best_intra(block, recon, 4, 4, 8, candidate_rounds=1)
        assert mode in ("dc", "vertical", "horizontal")


class TestSampleBlock:
    def test_integer_position_is_exact(self):
        plane = _plane()
        block = sample_block(plane, 4, 6, 8)
        np.testing.assert_array_equal(block, plane[4:12, 6:14])

    def test_out_of_frame_returns_none(self):
        plane = _plane()
        assert sample_block(plane, -1, 0, 8) is None
        assert sample_block(plane, 0, 28, 8) is None

    def test_half_pel_interpolates(self):
        plane = np.zeros((8, 8))
        plane[:, 4] = 100.0
        block = sample_block(plane, 0, 3.5, 4)
        assert block[0, 0] == pytest.approx(50.0)  # between columns 3 and 4
        assert block[0, 1] == pytest.approx(50.0)  # between columns 4 and 5
        assert block[0, 2] == pytest.approx(0.0)  # between columns 5 and 6


class TestMotionSearch:
    def test_finds_pure_translation(self):
        reference = _smooth_plane(seed=3)
        dy, dx = 3, -2
        y, x, size = 8, 8, 8
        source = reference[y + dy : y + dy + size, x + dx : x + dx + size]
        mv, prediction, sad = motion_search(
            source, reference, y, x, size, search_range=8, half_pel=False
        )
        assert (mv.dy, mv.dx) == (dy, dx)
        assert sad == pytest.approx(0.0)

    def test_respects_search_range(self):
        reference = _plane(seed=4)
        source = reference[20:28, 20:28]
        mv, _, _ = motion_search(
            source, reference, 0, 0, 8, search_range=4, half_pel=False
        )
        assert abs(mv.dy) <= 4.5 and abs(mv.dx) <= 4.5

    def test_half_pel_improves_subpixel_motion(self):
        # Build a reference and a source shifted by half a pixel.
        plane = _plane(16, 16, seed=5)
        shifted = (plane[:, :-1] + plane[:, 1:]) / 2.0
        source = shifted[4:12, 4:12]
        _, _, sad_full = motion_search(
            source, plane, 4, 4, 8, search_range=2, half_pel=False
        )
        _, _, sad_half = motion_search(
            source, plane, 4, 4, 8, search_range=2, half_pel=True
        )
        assert sad_half <= sad_full

    def test_predicted_mv_seed_helps_large_motion(self):
        reference = _plane(64, 64, seed=6)
        dy, dx = 10, 10  # beyond one diamond pass from origin
        y, x, size = 16, 16, 8
        source = reference[y + dy : y + dy + size, x + dx : x + dx + size]
        mv, _, sad = motion_search(
            source, reference, y, x, size, search_range=16, half_pel=False,
            predicted_mv=MotionVector(dx=10.0, dy=10.0),
        )
        assert sad == pytest.approx(0.0)


class TestBestInter:
    def test_picks_matching_reference(self):
        target = _plane(seed=7)
        decoy = _plane(seed=8)
        source = target[8:16, 8:16]
        ref_index, mv, _, sad = best_inter(
            source, [decoy, target], 8, 8, 8, search_range=4, half_pel=False
        )
        assert ref_index == 1
        assert sad == pytest.approx(0.0)

    def test_early_exit_on_first_good_reference(self):
        plane = _plane(seed=9)
        source = plane[8:16, 8:16]
        # Identical first reference: search must stop there.
        ref_index, _, _, _ = best_inter(
            source, [plane, _plane(seed=10)], 8, 8, 8, search_range=4, half_pel=False
        )
        assert ref_index == 0

    def test_requires_references(self):
        with pytest.raises(ValueError):
            best_inter(np.zeros((8, 8)), [], 0, 0, 8, 4, False)
