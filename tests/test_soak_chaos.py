"""Soak test: the repair flow under sustained Poisson fault pressure.

Drives :class:`RepairQueue` to capacity saturation with a continuous
fleet-wide fault rate and lets :class:`FailureSweeper` run the whole
workflow unattended for simulated hours.  The assertions are the
capacity-protection invariants of Section 4.4: the repair-concurrency
bound holds at every sample point, and no faulted host is ever lost --
each one either returns to production repaired or is still explicitly
tracked in the repair flow at the horizon.
"""

import pytest

from repro.failures import FailureManager, FailureSweeper, FaultInjector
from repro.sim.engine import Simulator
from repro.vcu.host import VcuHost
from repro.vcu.telemetry import FaultKind

REPAIR_CAP = 2
FAULT_HORIZON = 7200.0
RUN_HORIZON = 21600.0  # six simulated hours: time to drain the backlog


class TestRepairSoak:
    @pytest.fixture(scope="class")
    def soak(self):
        sim = Simulator()
        hosts = [VcuHost(host_id=f"soak-{i}") for i in range(6)]
        vcus = [vcu for host in hosts for vcu in host.vcus]
        injector = FaultInjector(sim, vcus, seed=29)
        # ~1 fault per VCU-hour for two hours across 120 VCUs: far more
        # demand than a cap of 2 concurrent repairs can absorb live.
        events = injector.random_hard_faults(
            1.0, until=FAULT_HORIZON,
            kind=FaultKind.ECC_UNCORRECTABLE, count=3,
        )
        # card_swap_threshold=1: any host carrying a disabled VCU enters
        # the repair flow (a card swap), so "terminal repair state" is
        # reachable for every faulted host, not only unusable ones.
        manager = FailureManager(
            hosts, repair_cap=REPAIR_CAP, card_swap_threshold=1,
        )
        sweeper = FailureSweeper(
            sim, manager, interval_seconds=60.0, repair_seconds=600.0,
        )
        sweeper.start(until=RUN_HORIZON)
        samples = []

        def monitor():
            while sim.now + 30.0 <= RUN_HORIZON:
                yield 30.0
                queue = manager.repair_queue
                samples.append((
                    sim.now, len(queue.in_repair), len(queue.waiting),
                ))

        sim.process(monitor(), name="soak-monitor")
        sim.run()
        return sim, hosts, manager, sweeper, events, samples

    def test_fault_pressure_saturates_the_queue(self, soak):
        _, _, manager, sweeper, events, samples = soak
        assert len(events) > 100  # the Poisson stream really ran
        assert sweeper.sweeps > 0
        # Saturation actually happened: at some sample the full cap was
        # committed (in-repair plus waiting at the bound).
        assert any(in_r + wait == REPAIR_CAP for _, in_r, wait in samples)

    def test_repair_concurrency_bound_holds_at_every_sample(self, soak):
        _, _, manager, _, _, samples = soak
        assert samples, "monitor never sampled"
        for at, in_repair, waiting in samples:
            assert in_repair <= REPAIR_CAP, f"cap broken at t={at}"
            assert in_repair + waiting <= REPAIR_CAP, f"queue bound at t={at}"

    def test_every_faulted_host_reaches_terminal_repair_state(self, soak):
        _, hosts, manager, sweeper, _, _ = soak
        faulted = {
            host.host_id for host in hosts
            if any(vcu.disabled for vcu in host.vcus) or host.unusable
            or host in manager.repair_queue.repaired
        }
        assert faulted  # the soak genuinely hurt the fleet
        repaired_ids = {h.host_id for h in manager.repair_queue.repaired}
        for host in hosts:
            if host.host_id not in faulted:
                continue
            terminal = (
                host.host_id in repaired_ids          # swapped and returned
                or manager.repair_queue.queued(host)  # still tracked
                or not host.unusable                  # tolerated in production
            )
            assert terminal, f"{host.host_id} lost by the repair flow"
        # With a six-hour drain window the cap clears the entire backlog:
        # nothing is left mid-repair and every broken host came back.
        assert not manager.repair_queue.waiting
        assert not manager.repair_queue.in_repair
        assert sweeper.repairs_completed == sweeper.repairs_started > 0
        for host in hosts:
            assert not host.unusable
            assert not any(vcu.disabled for vcu in host.vcus)

    def test_capacity_recovers_after_the_storm(self, soak):
        _, _, manager, _, _, _ = soak
        # Repairs wipe fault history, so the post-drain fleet is whole.
        assert manager.fleet_capacity_fraction() == pytest.approx(1.0)
