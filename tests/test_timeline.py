"""Tests for the deployment-timeline replay (Figure 9 machinery)."""

import pytest

from repro.cluster.timeline import (
    MonthConfig,
    default_timeline,
    live_adoption_curve,
    run_month,
)


class TestConfigs:
    def test_timeline_length_and_months(self):
        configs = default_timeline(12)
        assert [c.month for c in configs] == list(range(1, 13))

    def test_migration_completes_by_month_7(self):
        configs = {c.month: c for c in default_timeline(12)}
        assert configs[1].fraction_on_vcu == pytest.approx(0.5)
        assert configs[7].fraction_on_vcu == pytest.approx(1.0)
        assert configs[12].fraction_on_vcu == pytest.approx(1.0)

    def test_numa_fix_lands_month_4(self):
        configs = {c.month: c for c in default_timeline(12)}
        assert not configs[3].numa_aware
        assert configs[4].numa_aware

    def test_software_decode_after_month_6(self):
        configs = {c.month: c for c in default_timeline(12)}
        assert configs[6].software_decode_fraction == 0.0
        assert configs[7].software_decode_fraction > 0.0

    def test_fleet_and_overheads_improve(self):
        configs = default_timeline(12)
        fleets = [c.vcu_fleet_scale for c in configs]
        overheads = [c.step_overhead_seconds for c in configs]
        assert fleets == sorted(fleets)
        assert overheads == sorted(overheads, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonthConfig(1, fraction_on_vcu=1.5, numa_aware=True,
                        software_decode_fraction=0.0, vcu_fleet_scale=1.0)
        with pytest.raises(ValueError):
            MonthConfig(1, fraction_on_vcu=0.5, numa_aware=True,
                        software_decode_fraction=-0.1, vcu_fleet_scale=1.0)


class TestRunMonth:
    def _config(self, **overrides):
        defaults = dict(
            month=1, fraction_on_vcu=1.0, numa_aware=True,
            software_decode_fraction=0.0, vcu_fleet_scale=1.0,
        )
        defaults.update(overrides)
        return MonthConfig(**defaults)

    def test_produces_throughput(self):
        result = run_month(self._config(), base_vcu_workers=3, horizon_seconds=30, seed=1)
        assert result.throughput_mpix_s > 0
        assert result.vcu_workers == 3
        assert 0 <= result.decoder_utilization <= 1

    def test_deterministic_per_seed(self):
        a = run_month(self._config(), base_vcu_workers=2, horizon_seconds=20, seed=9)
        b = run_month(self._config(), base_vcu_workers=2, horizon_seconds=20, seed=9)
        assert a.total_megapixels == b.total_megapixels
        assert a.decoder_utilization == b.decoder_utilization

    def test_fleet_scale_raises_throughput(self):
        small = run_month(self._config(vcu_fleet_scale=1.0),
                          base_vcu_workers=2, horizon_seconds=30, seed=4)
        big = run_month(self._config(vcu_fleet_scale=3.0),
                        base_vcu_workers=2, horizon_seconds=30, seed=4)
        assert big.throughput_mpix_s > 1.5 * small.throughput_mpix_s

    def test_software_share_drags_throughput(self):
        all_vcu = run_month(self._config(fraction_on_vcu=1.0),
                            base_vcu_workers=3, horizon_seconds=30, seed=6)
        half = run_month(self._config(fraction_on_vcu=0.5),
                         base_vcu_workers=3, horizon_seconds=30, seed=6)
        assert half.throughput_mpix_s < all_vcu.throughput_mpix_s

    def test_software_decode_lowers_decoder_utilization(self):
        hw = run_month(self._config(software_decode_fraction=0.0),
                       base_vcu_workers=3, horizon_seconds=40, seed=8)
        sw = run_month(self._config(software_decode_fraction=0.8),
                       base_vcu_workers=3, horizon_seconds=40, seed=8)
        assert sw.decoder_utilization < hw.decoder_utilization


class TestLiveCurve:
    def test_normalized_and_monotone(self):
        curve = live_adoption_curve(12)
        assert curve[0] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_saturates(self):
        curve = live_adoption_curve(24)
        assert curve[-1] / curve[-2] < 1.02
