"""Property-based tests (hypothesis) for the segment/barrier algebra.

The :class:`~repro.transcode.segments.ManifestAssembler` is the oracle
the whole streaming ladder leans on -- segment conservation, alignment
barriers, and strict in-order manifest emission -- so its algebra gets
the property treatment under randomized rung sets, release schedules,
and rung-completion interleavings:

* every released segment ends in exactly one terminal state;
* manifest entries come out strictly in segment order, regardless of
  the order barriers fire;
* no barrier fires before all of a segment's rungs complete;
* duplicate releases / duplicate completions / completions for unknown
  segments always raise :class:`BarrierViolation`.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.transcode.segments import (
    BarrierViolation,
    ManifestAssembler,
    SegmentState,
)

rung_key_sets = st.lists(
    st.sampled_from(
        ["h264/1080p", "h264/720p", "h264/480p", "h264/360p",
         "h264/240p", "h264/144p", "vp9/1080p", "vp9/720p", "vp9/360p"]
    ),
    min_size=1, max_size=6, unique=True,
).map(tuple)

segment_counts = st.integers(min_value=1, max_value=8)


def scripted_run(rung_keys, segment_count, order_seed):
    """Drive a full stream through the assembler in a shuffled order.

    Builds the complete (segment, rung) completion list, shuffles it with
    hypothesis-drawn randomness, and replays it with an increasing clock.
    Returns the assembler plus the per-completion emission log.
    """
    assembler = ManifestAssembler("s", rung_keys)
    work = [
        (index, key)
        for index in range(segment_count)
        for key in rung_keys
    ]
    order_seed.shuffle(work)
    for index in range(segment_count):
        assembler.release(index, at=float(index))
    emissions = []
    clock = float(segment_count)
    for index, key in work:
        clock += 1.0
        emissions.append(assembler.complete_rung(index, key, at=clock))
    return assembler, emissions


@given(
    rung_keys=rung_key_sets,
    segment_count=segment_counts,
    order_seed=st.randoms(use_true_random=False),
)
def test_every_released_segment_reaches_exactly_one_terminal_state(
    rung_keys, segment_count, order_seed
):
    assembler, _ = scripted_run(rung_keys, segment_count, order_seed)
    # All work done => every segment EMITTED, none pending, none lost.
    assert assembler.pending_indices() == []
    assert sorted(e.index for e in assembler.entries) == list(
        range(segment_count)
    )
    assert len(assembler.entries) == segment_count  # exactly once each
    for index in range(segment_count):
        assert assembler.state_of(index) is SegmentState.EMITTED


@given(
    rung_keys=rung_key_sets,
    segment_count=segment_counts,
    order_seed=st.randoms(use_true_random=False),
)
def test_manifest_entries_emit_strictly_in_segment_order(
    rung_keys, segment_count, order_seed
):
    assembler, emissions = scripted_run(rung_keys, segment_count, order_seed)
    indices = [e.index for e in assembler.entries]
    assert indices == sorted(indices)
    # The flattened per-call emissions equal the manifest, in order.
    flat = [entry.index for batch in emissions for entry in batch]
    assert flat == indices
    for entry in assembler.entries:
        assert entry.emitted_at >= entry.aligned_at >= entry.released_at
        assert entry.stall_seconds == entry.emitted_at - entry.aligned_at


@given(
    rung_keys=rung_key_sets,
    segment_count=segment_counts,
    order_seed=st.randoms(use_true_random=False),
)
def test_barrier_never_fires_before_all_rungs_complete(
    rung_keys, segment_count, order_seed
):
    assembler = ManifestAssembler("s", rung_keys)
    work = [
        (index, key)
        for index in range(segment_count)
        for key in rung_keys
    ]
    order_seed.shuffle(work)
    for index in range(segment_count):
        assembler.release(index, at=0.0)
    done = {index: set() for index in range(segment_count)}
    for clock, (index, key) in enumerate(work):
        emitted = assembler.complete_rung(index, key, at=float(clock + 1))
        done[index].add(key)
        for entry in emitted:
            # Anything emitted must have every rung completed by now.
            assert done[entry.index] == set(rung_keys)
        state = assembler.state_of(index)
        if done[index] != set(rung_keys):
            assert state is SegmentState.ENCODING


@given(
    rung_keys=rung_key_sets,
    order_seed=st.randoms(use_true_random=False),
)
def test_duplicate_and_unknown_events_always_raise(rung_keys, order_seed):
    assembler = ManifestAssembler("s", rung_keys)
    assembler.release(0, at=0.0)
    with pytest.raises(BarrierViolation):
        assembler.release(0, at=1.0)  # double release
    with pytest.raises(BarrierViolation):
        assembler.complete_rung(7, rung_keys[0], at=1.0)  # never released
    with pytest.raises(BarrierViolation):
        assembler.complete_rung(0, "av1/8k", at=1.0)  # unknown rung key
    keys = list(rung_keys)
    order_seed.shuffle(keys)
    for clock, key in enumerate(keys):
        assembler.complete_rung(0, key, at=float(clock + 1))
    with pytest.raises(BarrierViolation):
        # Double encode after emission: still a violation.
        assembler.complete_rung(0, keys[0], at=99.0)
    assert [e.index for e in assembler.entries] == [0]


@given(segment_count=st.integers(min_value=2, max_value=8))
def test_head_of_line_stall_is_attributed_to_the_blocked_segment(
    segment_count
):
    # Complete segments in strictly reverse order: everything aligns
    # before segment 0, so all entries emit together when 0's barrier
    # finally fires, and only segment 0 has zero stall.
    assembler = ManifestAssembler("s", ("h264/360p",))
    for index in range(segment_count):
        assembler.release(index, at=0.0)
    for clock, index in enumerate(reversed(range(1, segment_count))):
        assert assembler.complete_rung(index, "h264/360p", at=clock + 1.0) == []
    final = float(segment_count)
    entries = assembler.complete_rung(0, "h264/360p", at=final)
    assert [e.index for e in entries] == list(range(segment_count))
    assert entries[0].stall_seconds == 0.0
    assert all(e.stall_seconds > 0.0 for e in entries[1:])
    assert all(e.emitted_at == final for e in entries)
