"""Tests for the workload generators and popularity model."""

import numpy as np
import pytest

from repro.sim.rng import make_rng
from repro.transcode.ladder import PopularityBucket
from repro.video.frame import resolution
from repro.workloads import (
    GamingSession,
    LiveStream,
    PopularityModel,
    UploadGenerator,
    bucket_for_views,
    gaming_latency_ms,
    simulate_live_stream,
    stretched_exponential_views,
)
from repro.workloads.gaming import meets_frame_budget
from repro.workloads.live import end_to_end_latency_seconds


class TestPopularity:
    def test_buckets_by_views(self):
        assert bucket_for_views(1e7) is PopularityBucket.HOT
        assert bucket_for_views(5e3) is PopularityBucket.WARM
        assert bucket_for_views(3) is PopularityBucket.COLD

    def test_head_dominates_watch_time(self):
        # Section 2.2: the very popular head is a small fraction of
        # uploads but the majority of watch time.
        shares = PopularityModel(seed=1).bucket_shares(samples=30000)
        hot_upload, hot_watch = shares[PopularityBucket.HOT]
        cold_upload, cold_watch = shares[PopularityBucket.COLD]
        assert hot_upload < 0.05
        assert hot_watch > 0.4
        assert cold_upload > 0.5
        assert cold_watch < 0.2

    def test_views_nonnegative(self):
        views = stretched_exponential_views(make_rng(0), 1000)
        assert (views >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            stretched_exponential_views(make_rng(0), 0)
        with pytest.raises(ValueError):
            stretched_exponential_views(make_rng(0), 10, shape=1.5)


class TestUploadGenerator:
    def test_arrivals_are_ordered_and_bounded(self):
        gen = UploadGenerator(arrivals_per_second=1.0, seed=2)
        videos = list(gen.videos(until=100.0))
        times = [v.arrival_time for v in videos]
        assert times == sorted(times)
        assert all(0 <= t < 100 for t in times)
        # Poisson(1/s) over 100s: roughly 100 arrivals.
        assert 60 <= len(videos) <= 140

    def test_video_ids_unique(self):
        gen = UploadGenerator(arrivals_per_second=0.5, seed=3)
        videos = list(gen.videos(until=50.0))
        assert len({v.video_id for v in videos}) == len(videos)

    def test_resolution_mix_respected(self):
        gen = UploadGenerator(arrivals_per_second=5.0, seed=4)
        videos = list(gen.videos(until=200.0))
        share_1080 = np.mean([v.source.name == "1080p" for v in videos])
        assert 0.25 <= share_1080 <= 0.45

    def test_diurnal_envelope_shapes_rate(self):
        gen = UploadGenerator(arrivals_per_second=2.0, seed=5, diurnal_amplitude=0.9)
        videos = list(gen.videos(until=86400.0))
        first_half = sum(1 for v in videos if v.arrival_time < 43200)
        second_half = len(videos) - first_half
        assert first_half > 1.3 * second_half  # sin peak in the first half

    def test_graph_building(self):
        gen = UploadGenerator(arrivals_per_second=1.0, seed=6)
        video = gen.sample_video()
        graph = gen.to_graph(video)
        assert graph.video_id == video.video_id
        assert graph.transcode_steps()

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            UploadGenerator(arrivals_per_second=1.0, mix={"1080p": 0.5})

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            UploadGenerator(arrivals_per_second=0.0)


class TestLive:
    def test_vcu_chunks_encode_in_realtime(self):
        stream = LiveStream("s1")
        results = simulate_live_stream(stream, 60.0, use_vcu=True)
        assert all(r.encode_seconds < stream.chunk_seconds for r in results)

    def test_software_chunks_are_slow(self):
        stream = LiveStream("s1")
        results = simulate_live_stream(stream, 60.0, use_vcu=False, seed=1)
        mean_encode = np.mean([r.encode_seconds for r in results])
        assert 6.0 <= mean_encode <= 16.0  # ~10s per 2s chunk (Section 4.5)

    def test_vcu_latency_near_5_seconds(self):
        stream = LiveStream("s1")
        results = simulate_live_stream(stream, 120.0, use_vcu=True)
        latency = end_to_end_latency_seconds(results, stream.chunk_seconds)
        assert latency <= 6.0

    def test_software_latency_far_worse(self):
        stream = LiveStream("s1")
        sw = simulate_live_stream(stream, 120.0, use_vcu=False, seed=2)
        hw = simulate_live_stream(stream, 120.0, use_vcu=True)
        sw_latency = end_to_end_latency_seconds(sw, stream.chunk_seconds)
        hw_latency = end_to_end_latency_seconds(hw, stream.chunk_seconds)
        assert sw_latency > 2.5 * hw_latency
        assert sw_latency > 10.0

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            end_to_end_latency_seconds([], 2.0)


class TestGaming:
    def test_vcu_meets_4k60_budget(self):
        # Section 4.5: Stadia delivers 4K 60 FPS with VCU low-latency
        # two-pass VP9.
        session = GamingSession()
        assert meets_frame_budget(session, use_vcu=True)
        assert gaming_latency_ms(session, use_vcu=True) < session.frame_budget_ms

    def test_software_misses_budget(self):
        session = GamingSession()
        assert not meets_frame_budget(session, use_vcu=False)
        assert gaming_latency_ms(session, use_vcu=False) > 3 * session.frame_budget_ms

    def test_lower_resolution_easier(self):
        hard = gaming_latency_ms(GamingSession("2160p"), use_vcu=False)
        easy = gaming_latency_ms(GamingSession("720p"), use_vcu=False)
        assert easy < hard


class TestPlatformDay:
    def test_same_seed_same_stream(self):
        from repro.workloads.platform import PlatformDayConfig, PlatformDayWorkload

        config = PlatformDayConfig(day_seconds=600.0)
        a = PlatformDayWorkload(config, seed=5).requests(until=600.0)
        b = PlatformDayWorkload(config, seed=5).requests(until=600.0)
        assert a == b
        assert a != PlatformDayWorkload(config, seed=6).requests(until=600.0)

    def test_stream_is_time_ordered_with_all_classes(self):
        from repro.control.jobs import SloClass
        from repro.workloads.platform import PlatformDayConfig, PlatformDayWorkload

        workload = PlatformDayWorkload(
            PlatformDayConfig(day_seconds=1200.0), seed=5
        )
        requests = workload.requests(until=1200.0)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert all(0 <= t < 1200.0 for t in times)
        classes = {r.slo_class for r in requests}
        assert classes == {SloClass.LIVE, SloClass.UPLOAD, SloClass.BATCH}
        # Job ids are unique across the merged stream.
        assert len({r.job_id for r in requests}) == len(requests)

    def test_diurnal_envelope_moves_arrival_mass(self):
        from repro.control.jobs import SloClass
        from repro.workloads.platform import PlatformDayConfig, PlatformDayWorkload

        day = 43200.0
        workload = PlatformDayWorkload(
            PlatformDayConfig(day_seconds=day, diurnal_amplitude=0.9), seed=5
        )
        uploads = [r for r in workload.requests(until=day)
                   if r.slo_class is SloClass.UPLOAD]
        # Upload phase peaks at day/2 and troughs at the day edges.
        peak_half = [r for r in uploads if day / 4 <= r.arrival_time < 3 * day / 4]
        assert len(peak_half) > 1.5 * (len(uploads) - len(peak_half))

    def test_offered_load_sanity(self):
        from repro.workloads.platform import (
            PlatformDayConfig,
            PlatformDayWorkload,
            offered_load,
        )

        config = PlatformDayConfig(day_seconds=3600.0)
        requests = PlatformDayWorkload(config, seed=11).requests(until=3600.0)
        load = offered_load(requests, 3600.0)
        assert 60.0 < load < 250.0  # slot-equivalents, matches fleet sizing
        with pytest.raises(ValueError):
            offered_load(requests, 0.0)

    def test_config_validation(self):
        from repro.workloads.platform import PlatformDayConfig

        with pytest.raises(ValueError):
            PlatformDayConfig(day_seconds=0.0)
        with pytest.raises(ValueError):
            PlatformDayConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            PlatformDayConfig(origin_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            PlatformDayConfig(origin_weights=(0.4, 0.3, 0.2, 0.2))
