"""Tests for one-pass and two-pass rate control."""

import numpy as np
import pytest

from repro.codec.profiles import LIBX264, VCU_VP9
from repro.codec.rate_control import (
    OnePassRateControl,
    TwoPassRateControl,
    encode_with_target_bitrate,
)
from repro.codec.tuning import (
    TUNING_MILESTONES,
    milestones_through,
    rate_control_efficiency,
    tuned_profile,
)


class TestOnePass:
    def test_qp_rises_on_overshoot(self):
        rc = OnePassRateControl(target_bits_per_frame=1000, initial_qp=30)
        rc.update(4000)
        assert rc.next_qp() > 30

    def test_qp_falls_on_undershoot(self):
        rc = OnePassRateControl(target_bits_per_frame=1000, initial_qp=30)
        rc.update(100)
        assert rc.next_qp() < 30

    def test_qp_clamped(self):
        rc = OnePassRateControl(target_bits_per_frame=1000, initial_qp=51)
        for _ in range(10):
            rc.update(10_000_000)
        assert rc.next_qp() <= 51

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            OnePassRateControl(target_bits_per_frame=0)


class TestTwoPass:
    def test_allocation_proportional_to_complexity(self):
        rc = TwoPassRateControl(target_bits_per_frame=1000)
        budgets = rc.allocate([1.0, 3.0])
        assert budgets[1] == pytest.approx(budgets[0] * 3.0)
        assert sum(budgets) == pytest.approx(2000)

    def test_offline_sees_whole_video(self):
        rc = TwoPassRateControl(target_bits_per_frame=1000, lag_frames=None)
        budgets = rc.allocate([1.0, 1.0, 10.0, 1.0])
        assert budgets[2] == max(budgets)

    def test_budgets_always_sum_to_total(self):
        for lag in (None, 0, 2):
            rc = TwoPassRateControl(target_bits_per_frame=500, lag_frames=lag)
            budgets = rc.allocate([5.0, 1.0, 8.0, 2.0, 2.0])
            assert sum(budgets) == pytest.approx(2500)

    def test_qp_for_budget_doubling_rule(self):
        qp = TwoPassRateControl.qp_for_budget(2000, reference_bits=1000, reference_qp=30)
        assert qp == pytest.approx(24.0)

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            TwoPassRateControl(1000, lag_frames=-1)


class TestTargetBitrateEncoding:
    @pytest.mark.parametrize("two_pass", [False, True])
    def test_hits_target_within_tolerance(self, tiny_video, two_pass):
        # Pick an achievable mid-range target from a probe encode.
        from repro.codec.encoder import encode_video

        probe = encode_video(tiny_video, LIBX264, qp=32)
        target = probe.bitrate_bps
        chunk = encode_with_target_bitrate(
            tiny_video, LIBX264, target, two_pass=two_pass
        )
        assert chunk.bitrate_bps == pytest.approx(target, rel=0.45)

    def test_two_pass_beats_one_pass_quality(self, noisy_video):
        from repro.codec.encoder import encode_video

        probe = encode_video(noisy_video, LIBX264, qp=34)
        target = probe.bitrate_bps
        one = encode_with_target_bitrate(noisy_video, LIBX264, target, two_pass=False)
        two = encode_with_target_bitrate(noisy_video, LIBX264, target, two_pass=True)
        # Offline two-pass should never be much worse at similar rates; the
        # paper relies on it being the best-quality mode (Section 2.1).
        assert two.psnr >= one.psnr - 0.3

    def test_rejects_bad_bitrate(self, tiny_video):
        with pytest.raises(ValueError):
            encode_with_target_bitrate(tiny_video, LIBX264, 0)


class TestTuning:
    def test_efficiency_starts_at_one(self):
        assert rate_control_efficiency("vp9", 0) == pytest.approx(1.0)

    def test_efficiency_monotonically_improves(self):
        values = [rate_control_efficiency("h264", m) for m in range(0, 17)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_efficiency_approaches_floor(self):
        assert rate_control_efficiency("vp9", 100) == pytest.approx(0.85, abs=0.001)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            rate_control_efficiency("av1", 3)

    def test_negative_month_rejected(self):
        with pytest.raises(ValueError):
            rate_control_efficiency("vp9", -1)

    def test_tuned_profile_only_touches_hardware(self):
        assert tuned_profile(LIBX264, 12) is LIBX264
        tuned = tuned_profile(VCU_VP9, 12)
        assert tuned.rate_control_efficiency < 1.0

    def test_milestones_ordered_and_filtered(self):
        months = [m.month for m in TUNING_MILESTONES]
        assert months == sorted(months)
        assert len(milestones_through(6)) == 3
