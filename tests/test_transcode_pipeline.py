"""Tests for ladders, workload modes, and step-graph construction."""

import pytest

from repro.transcode import (
    LadderPolicy,
    PopularityBucket,
    StepKind,
    WorkloadClass,
    build_transcode_graph,
    mode_for,
    variants_for,
)
from repro.transcode.pipeline import StepGraph, Step
from repro.vcu.spec import EncodingMode
from repro.video.frame import resolution


class TestLadder:
    def test_cold_videos_get_h264_only(self):
        variants = variants_for(resolution("1080p"), PopularityBucket.COLD)
        codecs = {codec for codec, _ in variants}
        assert codecs == {"h264"}

    def test_hot_videos_get_both_formats(self):
        variants = variants_for(resolution("1080p"), PopularityBucket.HOT)
        codecs = {codec for codec, _ in variants}
        assert codecs == {"h264", "vp9"}

    def test_software_era_defers_vp9(self):
        policy = LadderPolicy(vp9_at_upload=False)
        variants = policy.variants(resolution("1080p"), PopularityBucket.HOT)
        assert {codec for codec, _ in variants} == {"h264"}

    def test_full_ladder_for_each_format(self):
        variants = variants_for(resolution("720p"), PopularityBucket.WARM)
        per_codec = [r for codec, r in variants if codec == "vp9"]
        assert [r.name for r in per_codec] == ["720p", "480p", "360p", "240p", "144p"]


class TestModes:
    def test_upload_is_offline_two_pass(self):
        assert mode_for(WorkloadClass.UPLOAD).mode is EncodingMode.OFFLINE_TWO_PASS

    def test_live_is_lagged_with_tight_latency(self):
        live = mode_for(WorkloadClass.LIVE)
        assert live.mode is EncodingMode.LAGGED_TWO_PASS
        assert live.latency_target_seconds <= 5.0

    def test_gaming_is_low_latency_two_pass(self):
        gaming = mode_for(WorkloadClass.GAMING)
        assert gaming.mode is EncodingMode.LOW_LATENCY_TWO_PASS
        assert gaming.latency_target_seconds <= 0.1


class TestGraphBuilding:
    def build(self, **kwargs):
        defaults = dict(
            video_id="v1", source=resolution("1080p"), total_frames=450,
            fps=30.0, bucket=PopularityBucket.WARM,
        )
        defaults.update(kwargs)
        return build_transcode_graph(**defaults)

    def test_mot_step_count(self):
        # 450 frames -> 3 chunks; 2 codecs -> 6 MOT steps.
        graph = self.build(use_mot=True)
        assert len(graph.transcode_steps()) == 6
        assert all(s.vcu_task.is_mot for s in graph.transcode_steps())

    def test_sot_step_count(self):
        # 3 chunks x 2 codecs x 6 rungs = 36 SOT steps.
        graph = self.build(use_mot=False)
        assert len(graph.transcode_steps()) == 36
        assert all(not s.vcu_task.is_mot for s in graph.transcode_steps())

    def test_sot_and_mot_produce_same_pixels(self):
        mot = self.build(use_mot=True)
        sot = self.build(use_mot=False)
        assert mot.output_megapixels() == pytest.approx(sot.output_megapixels())

    def test_assembly_depends_on_all_transcodes(self):
        graph = self.build()
        assemble = [s for s in graph.steps if s.kind is StepKind.ASSEMBLE]
        assert len(assemble) == 1
        assert set(assemble[0].depends_on) == set(graph.transcode_steps())

    def test_non_transcode_steps_present(self):
        graph = self.build()
        kinds = {s.kind for s in graph.steps}
        assert StepKind.THUMBNAIL in kinds
        assert StepKind.FINGERPRINT in kinds
        assert StepKind.SEARCH_SIGNALS in kinds

    def test_step_ids_unique(self):
        graph = self.build()
        ids = [s.step_id for s in graph.steps]
        assert len(set(ids)) == len(ids)

    def test_cold_bucket_halves_transcodes(self):
        cold = self.build(bucket=PopularityBucket.COLD)
        warm = self.build(bucket=PopularityBucket.WARM)
        assert len(cold.transcode_steps()) * 2 == len(warm.transcode_steps())

    def test_cycle_detection(self):
        a = Step(step_id="a", kind=StepKind.ASSEMBLE, video_id="v")
        b = Step(step_id="b", kind=StepKind.ASSEMBLE, video_id="v", depends_on=[a])
        a.depends_on.append(b)
        with pytest.raises(ValueError):
            StepGraph(video_id="v", steps=[a, b], workload=WorkloadClass.UPLOAD)

    def test_software_decode_flag_propagates(self):
        graph = self.build(software_decode=True)
        assert all(s.vcu_task.software_decode for s in graph.transcode_steps())
