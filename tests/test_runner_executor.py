"""Executor determinism suite: serial-vs-sharded byte-identity, cache
lifecycle (hit / miss / source-edit invalidation / corruption recovery),
and the obs roll-in.

Unit callables live at module level so shard workers can pickle them by
reference when the pool falls back to spawn; the experiments themselves
are registered in a throwaway registry per test.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.runner.cache import ResultCache
from repro.runner.executor import _deal_shards, run_experiments
from repro.runner.manifest import build_manifest, manifest_text
from repro.runner.registry import Experiment, ExperimentRegistry, ResultSchema

SCHEMA = ResultSchema(version=1, fields=("x", "draw"))


def draw_unit(ctx):
    """Deterministic-by-identity unit: params plus one private RNG draw."""
    return {"x": ctx.params["x"], "draw": round(float(ctx.rng.random()), 12)}


def square_unit(ctx):
    return {"x": ctx.params["x"] ** 2, "draw": round(float(ctx.rng.random()), 12)}


def fake_tree(root):
    """Two independent single-file modules the experiments claim as sources."""
    src = root / "src"
    src.mkdir(parents=True, exist_ok=True)
    (src / "dep_a.py").write_text("VALUE = 1\n")
    (src / "dep_b.py").write_text("VALUE = 2\n")
    return root


def make_registry():
    registry = ExperimentRegistry()
    registry.add(Experiment(
        name="alpha", title="Alpha", fn=draw_unit,
        grid=tuple({"x": i} for i in range(5)), seed=3, schema=SCHEMA,
        sources=("dep_a",),
    ))
    registry.add(Experiment(
        name="beta", title="Beta", fn=square_unit,
        grid=tuple({"x": i} for i in range(4)), seed=9, schema=SCHEMA,
        sources=("dep_b",),
    ))
    return registry


def run_manifest(registry, root, **kwargs):
    result = run_experiments(registry, root=str(root), **kwargs)
    return manifest_text(build_manifest(result.runs)), result


class TestDeterminism:
    def test_serial_and_sharded_manifests_byte_identical(self, tmp_path):
        fake_tree(tmp_path)
        registry = make_registry()
        serial, _ = run_manifest(registry, tmp_path, jobs=1)
        for jobs in (3, 4):
            sharded, result = run_manifest(registry, tmp_path, jobs=jobs)
            assert sharded == serial, f"jobs={jobs} diverged from jobs=1"
            assert result.stats.shards > 1

    def test_results_land_in_grid_order(self, tmp_path):
        fake_tree(tmp_path)
        result = run_experiments(make_registry(), root=str(tmp_path), jobs=3)
        by_name = {run.experiment.name: run for run in result.runs}
        assert [r["x"] for r in by_name["alpha"].results] == [0, 1, 2, 3, 4]
        assert [r["x"] for r in by_name["beta"].results] == [0, 1, 4, 9]

    def test_cache_temperature_never_changes_the_manifest(self, tmp_path):
        fake_tree(tmp_path)
        registry = make_registry()
        cache = ResultCache(tmp_path / "cache")
        cold, _ = run_manifest(registry, tmp_path, jobs=2, cache=cache)
        warm, _ = run_manifest(registry, tmp_path, jobs=2, cache=cache)
        uncached, _ = run_manifest(registry, tmp_path, jobs=1)
        assert cold == warm == uncached

    def test_jobs_must_be_positive(self, tmp_path):
        fake_tree(tmp_path)
        with pytest.raises(ValueError, match="jobs"):
            run_experiments(make_registry(), root=str(tmp_path), jobs=0)


class TestCacheLifecycle:
    def test_second_run_is_all_hits(self, tmp_path):
        fake_tree(tmp_path)
        registry = make_registry()
        cache = ResultCache(tmp_path / "cache")
        _, first = run_manifest(registry, tmp_path, cache=cache)
        assert first.stats.cache_hits == 0
        assert first.stats.cache_misses == first.stats.units == 9

        cache2 = ResultCache(tmp_path / "cache")
        _, second = run_manifest(registry, tmp_path, cache=cache2)
        assert second.stats.cache_hits == 9
        assert second.stats.cache_misses == 0
        assert second.stats.hit_rate == 1.0
        assert second.stats.shards == 0  # nothing left to execute

    def test_source_edit_invalidates_only_dependents(self, tmp_path):
        fake_tree(tmp_path)
        registry = make_registry()
        cache_dir = tmp_path / "cache"
        run_manifest(registry, tmp_path, cache=ResultCache(cache_dir))

        # alpha depends on dep_a only; beta on dep_b only.
        (tmp_path / "src" / "dep_a.py").write_text("VALUE = 100\n")
        cache = ResultCache(cache_dir)
        _, result = run_manifest(registry, tmp_path, cache=cache)
        assert result.stats.cache_misses == 5   # alpha recomputed
        assert result.stats.cache_hits == 4     # beta untouched

    def test_corrupted_entry_recovers_by_recompute(self, tmp_path):
        fake_tree(tmp_path)
        registry = make_registry()
        cache_dir = tmp_path / "cache"
        _, first = run_manifest(registry, tmp_path, cache=ResultCache(cache_dir))

        victim = sorted((cache_dir / "alpha").glob("*.json"))[0]
        victim.write_text("{truncated")
        _, second = run_manifest(registry, tmp_path, cache=ResultCache(cache_dir))
        assert second.stats.cache_errors == 1
        assert second.stats.cache_hits == 8
        assert second.stats.cache_misses == 1

        # The entry was rewritten: a third run is clean again.
        _, third = run_manifest(registry, tmp_path, cache=ResultCache(cache_dir))
        assert third.stats.cache_hits == 9 and third.stats.cache_errors == 0


class TestSharding:
    def test_deal_shards_partitions_round_robin(self):
        work = [(f"e{i}", i) for i in range(7)]
        shards = _deal_shards(work, 3)
        assert [index for index, _ in shards] == [0, 1, 2]
        dealt = [item for _, shard in shards for item in shard]
        assert sorted(dealt) == sorted(work)
        sizes = [len(shard) for _, shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_shards_than_work_or_jobs(self):
        work = [("e", 0), ("e", 1)]
        assert len(_deal_shards(work, 8)) == 2
        assert len(_deal_shards(work, 1)) == 1
        assert _deal_shards([], 4) == []


class TestObsRollIn:
    def test_run_accounting_lands_in_installed_hub(self, tmp_path):
        fake_tree(tmp_path)
        registry = make_registry()
        with obs.installed() as hub:
            result = run_experiments(
                registry, root=str(tmp_path), jobs=2,
                cache=ResultCache(tmp_path / "cache"),
            )
            snap = hub.metrics.snapshot()
        assert snap["runner.experiments"] == 2.0
        assert snap["runner.units"] == 9.0
        assert snap["runner.cache.misses"] == 9.0
        assert snap["runner.shards"] == float(result.stats.shards)
        assert snap["runner.jobs"] == 2.0
        assert snap["runner.shard_seconds.count"] == float(result.stats.shards)

    def test_no_hub_no_crash(self, tmp_path):
        fake_tree(tmp_path)
        assert obs.active() is None
        run_experiments(make_registry(), root=str(tmp_path))
