"""Unit tests for the segment-streaming dataflow.

Covers the pieces between the pure barrier algebra (property-tested in
``test_segment_properties``) and the full live-ladder scenario: stream
specs, the segment watcher's release timing, per-rung step graphs with
rung-differentiated footprints, and the dispatcher/session wiring that
runs a whole stream on a real (tiny) cluster.
"""

from __future__ import annotations

import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.obs.latency import LadderMetrics
from repro.sim import Simulator
from repro.transcode import (
    LadderDispatcher,
    SegmentWatcher,
    StreamKind,
    StreamSpec,
    build_segment_graph,
)
from repro.transcode.segments import (
    SegmentRelease,
    rung_key_of,
    segment_index_of,
)
from repro.vcu.host import VcuHost
from repro.vcu.spec import HostSpec
from repro.video.frame import resolution


def live_spec(**overrides):
    base = dict(
        stream_id="live-1",
        kind=StreamKind.LIVE,
        source=resolution("720p"),
        segment_count=4,
        segment_seconds=2.0,
        deadline_seconds=6.0,
    )
    base.update(overrides)
    return StreamSpec(**base)


class TestStreamSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            live_spec(segment_count=0)
        with pytest.raises(ValueError):
            live_spec(segment_seconds=0.0)
        with pytest.raises(ValueError):
            live_spec(codecs=())
        with pytest.raises(ValueError):
            live_spec(codecs=("av1",))
        with pytest.raises(ValueError):
            live_spec(deadline_seconds=-1.0)

    def test_rung_keys_cross_codecs_with_the_output_ladder(self):
        spec = live_spec(codecs=("h264", "vp9"))
        rungs = [r.name for r in spec.rungs()]
        assert rungs[0] == "720p" and "144p" in rungs
        assert spec.rung_keys() == tuple(
            f"{codec}/{name}" for codec in ("h264", "vp9") for name in rungs
        )

    def test_segment_frames_rounds_from_duration(self):
        assert live_spec(segment_seconds=2.0, fps=30.0).segment_frames == 60


class TestSegmentWatcher:
    def collect(self, spec, start_at=0.0):
        sim = Simulator()
        releases = []
        watcher = SegmentWatcher(sim, spec, releases.append)
        sim.call_at(start_at, watcher.start)
        sim.run()
        return releases

    def test_live_segments_drip_one_per_segment_duration(self):
        releases = self.collect(live_spec(segment_count=3), start_at=10.0)
        assert [r.index for r in releases] == [0, 1, 2]
        assert [r.released_at for r in releases] == [12.0, 14.0, 16.0]
        assert [r.deadline for r in releases] == [18.0, 20.0, 22.0]

    def test_upload_segments_all_release_at_start(self):
        spec = live_spec(
            stream_id="up-1", kind=StreamKind.UPLOAD, segment_count=3,
            deadline_seconds=None,
        )
        releases = self.collect(spec, start_at=5.0)
        assert [r.released_at for r in releases] == [5.0, 5.0, 5.0]
        assert all(r.deadline is None for r in releases)

    def test_watcher_cannot_be_started_twice(self):
        sim = Simulator()
        watcher = SegmentWatcher(sim, live_spec(), lambda r: None)
        watcher.start()
        with pytest.raises(RuntimeError):
            watcher.start()


class TestSegmentGraph:
    def graph(self, **overrides):
        spec = live_spec(**overrides)
        release = SegmentRelease(
            stream_id=spec.stream_id, index=2, released_at=6.0, deadline=12.0
        )
        return spec, build_segment_graph(spec, release)

    def test_one_sot_step_per_codec_rung_with_unique_ids(self):
        spec, graph = self.graph(codecs=("h264", "vp9"))
        steps = graph.transcode_steps()
        assert len(steps) == len(spec.rung_keys())
        assert len({s.step_id for s in steps}) == len(steps)
        assert sorted(rung_key_of(s) for s in steps) == sorted(spec.rung_keys())
        assert all(segment_index_of(s) == 2 for s in steps)
        assert all(s.deadline == 12.0 for s in steps)
        assert graph.video_id == "live-1#2"

    def test_footprints_are_rung_differentiated(self):
        _, graph = self.graph()
        by_rung = {s.rung: s.vcu_task for s in graph.transcode_steps()}
        assert by_rung["720p"].output_pixels > by_rung["144p"].output_pixels
        assert not any(task.is_mot for task in by_rung.values())

    def test_only_low_rungs_are_opportunistic(self):
        _, graph = self.graph()
        flags = {s.rung: s.fallback_opportunistic
                 for s in graph.transcode_steps()}
        assert flags["720p"] is False and flags["480p"] is False
        assert flags["360p"] is True and flags["144p"] is True

    def test_opportunistic_ceiling_zero_disables_fallback(self):
        _, graph = self.graph(opportunistic_max_pixels=0)
        assert not any(
            s.fallback_opportunistic for s in graph.transcode_steps()
        )


def tiny_cluster(sim, vcus=2, cpus=1, seed=7):
    host = VcuHost(
        host_spec=HostSpec(
            vcus_per_card=vcus, cards_per_tray=1, trays_per_host=1
        ),
        host_id="seg-host",
    )
    workers = [VcuWorker(v, host=host) for v in host.vcus]
    cpu_workers = [CpuWorker(cores=16, name=f"seg-cpu{i}") for i in range(cpus)]
    return TranscodeCluster(sim, workers, cpu_workers, seed=seed)


class TestDispatcherEndToEnd:
    def run_stream(self, spec, **cluster_kwargs):
        sim = Simulator()
        cluster = tiny_cluster(sim, **cluster_kwargs)
        dispatcher = LadderDispatcher(sim, cluster)
        finished = []
        dispatcher.start_stream(spec, on_final=finished.append)
        sim.run()
        return sim, dispatcher, finished

    def test_live_stream_manifests_in_order_and_records_ttfs(self):
        sim, dispatcher, finished = self.run_stream(live_spec())
        session = dispatcher.session("live-1")
        assert finished == [session] and session.done
        indices = [e.index for e in session.assembler.entries]
        assert indices == [0, 1, 2, 3]
        assert session.assembler.pending_indices() == []
        ttfs = session.assembler.time_to_first_segment
        # First segment releases at 2 s, so TTFS is at least that.
        assert ttfs is not None and ttfs >= 2.0
        metrics = dispatcher.metrics
        assert metrics.streams_started == metrics.streams_completed == 1
        assert metrics.segments_released == metrics.manifests_emitted == 4
        assert metrics.ttfs.total == 1
        assert metrics.deadlines_tracked == 4

    def test_upload_stream_floods_then_aligns(self):
        spec = live_spec(
            stream_id="up-1", kind=StreamKind.UPLOAD, segment_count=3,
            deadline_seconds=None,
        )
        _, dispatcher, finished = self.run_stream(spec)
        assert len(finished) == 1
        session = dispatcher.session("up-1")
        assert [e.index for e in session.assembler.entries] == [0, 1, 2]
        assert dispatcher.metrics.deadlines_tracked == 0

    def test_queue_waits_are_recorded_per_rung(self):
        _, dispatcher, _ = self.run_stream(live_spec())
        rungs = dispatcher.metrics.rungs_seen()
        assert "720p" in rungs and "144p" in rungs
        for rung in rungs:
            assert dispatcher.metrics.queue_wait[rung].total > 0

    def test_saturated_cluster_takes_opportunistic_fallbacks(self):
        # One VCU against two flooding uploads: low rungs overflow to CPU.
        sim = Simulator()
        cluster = tiny_cluster(sim, vcus=1, cpus=2)
        dispatcher = LadderDispatcher(sim, cluster)
        for n in range(2):
            dispatcher.start_stream(live_spec(
                stream_id=f"up-{n + 1}", kind=StreamKind.UPLOAD,
                segment_count=8, deadline_seconds=None,
            ))
        sim.run()
        assert dispatcher.unfinished() == []
        assert cluster.stats.opportunistic_fallbacks > 0
        assert cluster.stats.software_fallbacks >= (
            cluster.stats.opportunistic_fallbacks
        )
        assert dispatcher.metrics.opportunistic_fallbacks == (
            cluster.stats.opportunistic_fallbacks
        )

    def test_duplicate_stream_id_is_rejected(self):
        sim = Simulator()
        dispatcher = LadderDispatcher(sim, tiny_cluster(sim))
        dispatcher.start_stream(live_spec())
        with pytest.raises(ValueError):
            dispatcher.start_stream(live_spec())

    def test_shared_metrics_across_dispatchers(self):
        metrics = LadderMetrics()
        sim = Simulator()
        dispatcher = LadderDispatcher(sim, tiny_cluster(sim), metrics=metrics)
        assert dispatcher.metrics is metrics
        dispatcher.start_stream(live_spec(segment_count=1))
        sim.run()
        assert metrics.streams_completed == 1
