"""Unit tests for trace spans, the bounded log, and the hub itself."""

import json

import pytest

from repro import obs
from repro.obs.trace import TraceLog, TraceSpan, _clean


class TestClean:
    def test_scalars_pass_through(self):
        assert _clean(True) is True
        assert _clean(None) is None
        assert _clean(7) == 7
        assert _clean("name") == "name"

    def test_floats_round_to_nine_decimals(self):
        assert _clean(0.1 + 0.2) == 0.3
        assert _clean(1.0000000001) == 1.0

    def test_sets_become_sorted_lists(self):
        assert _clean({"b", "a", "c"}) == ["a", "b", "c"]
        assert _clean(frozenset((3, 1, 2))) == [1, 2, 3]

    def test_sequences_recurse(self):
        assert _clean((1, {"b", "a"}, 0.1 + 0.2)) == [1, ["a", "b"], 0.3]

    def test_unknown_objects_fall_back_to_str(self):
        class Opaque:
            def __str__(self):
                return "opaque"

        assert _clean(Opaque()) == "opaque"


class TestTraceSpan:
    def test_json_is_compact_and_key_sorted(self):
        span = TraceSpan(seq=1, kind="step", name="s", t0=1.0, t1=2.5,
                         attrs={"z": 1, "a": {"x", "y"}})
        text = span.to_json()
        assert text == ('{"attrs":{"a":["x","y"],"z":1},"kind":"step",'
                        '"name":"s","seq":1,"t0":1.0,"t1":2.5}')

    def test_round_trip_through_dict(self):
        span = TraceSpan(seq=3, kind="retry", name="r", t0=1.0, t1=1.0,
                         attrs={"attempt": 2})
        again = TraceSpan.from_dict(json.loads(span.to_json()))
        assert again == span
        assert again.duration == 0.0


class TestTraceLog:
    def test_append_assigns_monotone_seq(self):
        log = TraceLog()
        spans = [log.append("step", f"s{i}", float(i)) for i in range(3)]
        assert [s.seq for s in spans] == [0, 1, 2]
        assert len(log) == 3
        assert log.spans == list(log)

    def test_point_spans_default_t1_to_t0(self):
        span = TraceLog().append("hang", "h", 5.0)
        assert span.t1 == 5.0

    def test_cap_drops_new_spans_but_keeps_counting(self):
        log = TraceLog(max_events=2)
        assert log.append("a", "1", 0.0) is not None
        assert log.append("a", "2", 1.0) is not None
        assert log.append("a", "3", 2.0) is None
        assert log.append("a", "4", 3.0) is None
        assert len(log) == 2
        assert log.dropped == 2
        # seq keeps advancing under the cap so post-hoc analysis can see
        # exactly where the gap is.
        assert log.append("a", "5", 4.0) is None
        assert log._seq == 5

    def test_rejects_zero_cap(self):
        with pytest.raises(ValueError):
            TraceLog(max_events=0)

    def test_jsonl_round_trip(self, tmp_path):
        log = TraceLog()
        log.append("step", "s", 1.0, 2.0, {"worker": "w0"})
        log.append("hang", "h", 3.0)
        path = str(tmp_path / "trace.jsonl")
        assert log.write_jsonl(path) == 2
        spans = TraceLog.read_jsonl(path)
        assert [s.to_json() for s in spans] == [s.to_json() for s in log]


class TestHub:
    def test_install_uninstall_lifecycle(self):
        assert obs.active() is None
        hub = obs.install()
        try:
            assert obs.active() is hub
            with pytest.raises(RuntimeError):
                obs.install()
        finally:
            assert obs.uninstall() is hub
        assert obs.active() is None
        assert obs.uninstall() is None

    def test_installed_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.installed():
                assert obs.active() is not None
                raise RuntimeError("boom")
        assert obs.active() is None

    def test_emit_defaults_to_bound_clock_and_context(self):
        hub = obs.Observability()
        assert hub.now() == 0.0  # unbound clock
        hub.bind_clock(lambda: 42.0, lambda: "proc:demo")
        span = hub.emit("step", "s")
        assert span.t0 == 42.0 and span.t1 == 42.0
        assert span.attrs["proc"] == "proc:demo"

    def test_emit_does_not_override_explicit_values(self):
        hub = obs.Observability()
        hub.bind_clock(lambda: 42.0, lambda: "proc:demo")
        span = hub.emit("step", "s", t0=1.0, t1=2.0, attrs={"proc": "mine"})
        assert (span.t0, span.t1, span.attrs["proc"]) == (1.0, 2.0, "mine")

    def test_emit_without_context_provider_adds_no_proc(self):
        hub = obs.Observability()
        hub.bind_clock(lambda: 1.0, lambda: None)
        assert "proc" not in hub.emit("step", "s").attrs

    def test_count_and_observe_shortcuts(self):
        hub = obs.Observability()
        hub.count("events")
        hub.count("events", 2.0)
        hub.observe("lat", 0.7, bounds=(1.0,))
        snap = hub.metrics.snapshot()
        assert snap["events"] == 3.0
        assert snap["lat.count"] == 1.0

    def test_trace_cap_flows_through_the_hub(self):
        hub = obs.Observability(max_trace_events=1)
        hub.emit("a", "1", t0=0.0)
        hub.emit("a", "2", t0=1.0)
        assert len(hub.trace) == 1
        assert hub.trace.dropped == 1
