"""Resilience-subsystem tests: watchdog, backoff, health machine, rehab.

Covers the always-on failure loop end to end: hung devices recovered by
watchdog deadlines, retries with exponential backoff, the per-worker
health-state machine with golden-battery rehabilitation, fault-domain
host eviction, the unattended failure sweeper, and -- the acceptance
drill -- a chaos run that injects hangs, silent corruption, and a
correlated host fault mid-stream and still completes every graph with
zero escaped corruption, deterministically across same-seed runs.
"""

import pytest

from repro import obs
from repro.cluster import (
    CpuWorker,
    HealthPolicy,
    HealthState,
    TranscodeCluster,
    VcuWorker,
)
from repro.cluster.scheduler import BinPackingScheduler
from repro.failures import (
    BackoffPolicy,
    FailureManager,
    FailureSweeper,
    FaultDomainPolicy,
    FaultDomainTracker,
    FaultInjector,
    WatchdogPolicy,
)
from repro.failures.consistent_hash import ChunkAffinityPolicy, ConsistentHashRing
from repro.sim import Simulator
from repro.sim.rng import make_rng
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.spec import DEFAULT_VCU_SPEC, HostSpec
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution


def graph(video_id="v1", frames=300):
    return build_transcode_graph(
        video_id=video_id, source=resolution("720p"), total_frames=frames,
        fps=30.0, bucket=PopularityBucket.WARM,
    )


def small_host(tag: str) -> VcuHost:
    """A 4-VCU host with run-independent ids.

    Card/VCU ids come from global auto-increment counters, so two
    otherwise-identical runs would differ; reproducibility tests need
    stable names.
    """
    host = VcuHost(
        host_spec=HostSpec(vcus_per_card=2, cards_per_tray=2, trays_per_host=1),
        host_id=tag,
    )
    for index, vcu in enumerate(host.vcus):
        vcu.vcu_id = f"{tag}-vcu{index}"
        vcu.telemetry.vcu_id = vcu.vcu_id
    return host


# --------------------------------------------------------------------- #
# Policy units


class TestWatchdogPolicy:
    def test_deadline_scales_expected_duration(self):
        policy = WatchdogPolicy(deadline_multiplier=4.0, slack_seconds=5.0)
        assert policy.deadline_for(100.0) == 405.0

    def test_deadline_is_floored(self):
        policy = WatchdogPolicy(min_deadline_seconds=10.0)
        assert policy.deadline_for(0.0) == 10.0
        assert policy.deadline_for(0.5) == 10.0

    def test_rejects_sub_unity_multiplier(self):
        with pytest.raises(ValueError):
            WatchdogPolicy(deadline_multiplier=0.5)


class TestBackoffPolicy:
    def test_exponential_growth_and_cap_without_jitter(self):
        policy = BackoffPolicy(
            base_seconds=2.0, multiplier=2.0, max_seconds=16.0, jitter=0.0
        )
        rng = make_rng(0)
        delays = [policy.delay_for(attempt, rng) for attempt in range(1, 6)]
        assert delays == [2.0, 4.0, 8.0, 16.0, 16.0]

    def test_jitter_stays_within_fraction(self):
        policy = BackoffPolicy(
            base_seconds=10.0, multiplier=1.0, max_seconds=10.0, jitter=0.5
        )
        rng = make_rng(3)
        for _ in range(100):
            delay = policy.delay_for(1, rng)
            assert 10.0 <= delay < 15.0

    def test_same_seed_same_delays(self):
        policy = BackoffPolicy()
        a = [policy.delay_for(i, make_rng(9)) for i in range(1, 5)]
        b = [policy.delay_for(i, make_rng(9)) for i in range(1, 5)]
        assert a == b

    def test_rejects_bad_attempt(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay_for(0, make_rng(0))


class TestFaultDomainTracker:
    def test_single_vcu_failing_repeatedly_is_a_card_problem(self):
        tracker = FaultDomainTracker(FaultDomainPolicy(distinct_vcu_threshold=3))
        for t in range(10):
            assert not tracker.record("h0", "v0", float(t))
        assert tracker.evicted_hosts == []

    def test_distinct_vcus_in_window_evict_the_host(self):
        tracker = FaultDomainTracker(
            FaultDomainPolicy(window_seconds=100.0, distinct_vcu_threshold=3)
        )
        assert not tracker.record("h0", "v0", 0.0)
        assert not tracker.record("h0", "v1", 10.0)
        assert tracker.record("h0", "v2", 20.0)
        assert tracker.evicted_hosts == ["h0"]

    def test_window_expiry_forgets_old_failures(self):
        tracker = FaultDomainTracker(
            FaultDomainPolicy(window_seconds=50.0, distinct_vcu_threshold=3)
        )
        assert not tracker.record("h0", "v0", 0.0)
        assert not tracker.record("h0", "v1", 10.0)
        # v0 and v1 have aged out by now: only v2 and v3 are in-window.
        assert not tracker.record("h0", "v2", 200.0)
        assert not tracker.record("h0", "v3", 210.0)

    def test_hosts_tracked_independently(self):
        tracker = FaultDomainTracker(FaultDomainPolicy(distinct_vcu_threshold=2))
        assert not tracker.record("h0", "v0", 0.0)
        assert not tracker.record("h1", "v1", 0.0)
        assert tracker.record("h0", "v2", 1.0)

    def test_rejects_threshold_of_one(self):
        with pytest.raises(ValueError):
            FaultDomainPolicy(distinct_vcu_threshold=1)


# --------------------------------------------------------------------- #
# Worker health-state machine


def _worker(policy=None):
    vcu = Vcu(DEFAULT_VCU_SPEC)
    return VcuWorker(vcu, health_policy=policy)


class TestHealthStateMachine:
    def test_strikes_escalate_suspect_then_quarantined(self):
        worker = _worker(HealthPolicy(strike_budget=2))
        assert worker.record_strike() is False
        assert worker.health is HealthState.SUSPECT
        assert worker.available()  # a suspect keeps serving
        assert worker.record_strike() is True
        assert worker.health is HealthState.QUARANTINED
        assert not worker.available()
        assert worker.refused

    def test_strikes_on_quarantined_worker_are_ignored(self):
        worker = _worker(HealthPolicy(strike_budget=1))
        assert worker.record_strike() is True
        assert worker.record_strike() is False
        assert worker.health is HealthState.QUARANTINED

    def test_abort_and_quarantine_reports_the_transition_once(self):
        worker = _worker()
        assert worker.abort_and_quarantine() is True
        assert worker.abort_and_quarantine() is False
        assert worker.health is HealthState.QUARANTINED

    def test_rescreen_pass_restores_healthy_and_resets_counters(self):
        worker = _worker(HealthPolicy(strike_budget=1))
        worker.record_strike()
        worker.begin_rescreen()
        assert worker.health is HealthState.RESCREENING
        assert worker.finish_rescreen() is True
        assert worker.health is HealthState.HEALTHY
        assert worker.strikes == 0
        assert worker.available()

    def test_rescreen_failure_budget_disables_worker_and_device(self):
        worker = _worker(HealthPolicy(strike_budget=1, max_rescreen_failures=2))
        worker.vcu.mark_corrupt()
        worker.record_strike()
        worker.begin_rescreen()
        assert worker.finish_rescreen() is False
        assert worker.health is HealthState.QUARANTINED
        worker.begin_rescreen()
        assert worker.finish_rescreen() is False
        assert worker.health is HealthState.DISABLED
        assert worker.vcu.disabled

    def test_rescreen_transitions_guarded(self):
        worker = _worker()
        with pytest.raises(RuntimeError):
            worker.begin_rescreen()
        with pytest.raises(RuntimeError):
            worker.finish_rescreen()

    def test_reset_after_repair_requeues_unhealthy_workers_only(self):
        healthy = _worker()
        assert healthy.reset_after_repair() is False
        assert healthy.health is HealthState.HEALTHY

        broken = _worker(HealthPolicy(strike_budget=1, max_rescreen_failures=1))
        broken.vcu.mark_corrupt()
        broken.record_strike()
        broken.begin_rescreen()
        broken.finish_rescreen()
        assert broken.health is HealthState.DISABLED
        broken.vcu.enable()  # the repair swapped the card
        assert broken.reset_after_repair() is True
        assert broken.health is HealthState.QUARANTINED
        assert broken.rescreen_failures == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(strike_budget=0)
        with pytest.raises(ValueError):
            HealthPolicy(rescreen_backoff=0.5)
        with pytest.raises(ValueError):
            HealthPolicy(max_rescreen_failures=0)


# --------------------------------------------------------------------- #
# Scheduler preference (affinity plumbing)


class _FakeWorker:
    def __init__(self, name):
        self.name = name
        self.admitted = 0

    def available(self):
        return True

    def try_admit(self, request):
        self.admitted += 1
        return True


class TestSchedulerPreference:
    def test_preference_front_loads_probe_order(self):
        workers = [_FakeWorker(n) for n in ("a", "b", "c")]
        scheduler = BinPackingScheduler(workers)
        placed = scheduler.place({}, preference=["c", "b"])
        assert placed.name == "c"

    def test_exclusion_applies_on_top_of_preference(self):
        workers = [_FakeWorker(n) for n in ("a", "b", "c")]
        scheduler = BinPackingScheduler(workers)
        placed = scheduler.place({}, excluded={"c"}, preference=["c", "b"])
        assert placed.name == "b"

    def test_unknown_preferred_names_are_ignored(self):
        workers = [_FakeWorker(n) for n in ("a", "b")]
        scheduler = BinPackingScheduler(workers)
        placed = scheduler.place({}, preference=["ghost"])
        assert placed.name == "a"


class TestChunkAffinity:
    def test_placement_order_starts_inside_the_affinity_set(self):
        ring = ConsistentHashRing([f"w{i}" for i in range(8)])
        policy = ChunkAffinityPolicy(ring, affinity_size=3)
        owners = policy.affinity_set("video-1")
        assert len(owners) == 3
        for chunk in range(12):
            order = policy.placement_order("video-1", chunk)
            assert order[0] in owners
            assert set(order) == ring.nodes  # falls back to the full ring

    def test_exclusion_removes_nodes_from_the_order(self):
        ring = ConsistentHashRing([f"w{i}" for i in range(8)])
        policy = ChunkAffinityPolicy(ring, affinity_size=3)
        owners = policy.affinity_set("video-1")
        order = policy.placement_order("video-1", 0, excluded={owners[0]})
        assert owners[0] not in order

    def test_cluster_affinity_confines_each_video_to_few_vcus(self):
        # Light, staggered load: each video's chunks fit its affinity
        # set, so confinement (not capacity spill) decides placement.
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"aff-{i}") for i in range(8)]
        workers = [VcuWorker(v) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)], seed=4,
            affinity_placement=True, affinity_size=2,
        )
        graphs = [graph(f"affinity-v{i}") for i in range(8)]
        for i, g in enumerate(graphs):
            sim.call_in(50.0 * i, lambda g=g: cluster.submit(g))
        sim.run()
        assert all(g.completed_at is not None for g in graphs)
        per_video = [
            {s.processed_by for s in g.transcode_steps()} for g in graphs
        ]
        # Each video stays inside (or barely spills past) its 2-VCU set...
        assert all(len(used) <= 3 for used in per_video)
        # ...while hashing spreads different videos' sets across the
        # fleet -- unlike first-fit, which would pack every light video
        # onto the first workers.
        assert len(set().union(*per_video)) >= 4


# --------------------------------------------------------------------- #
# Fault injector: Poisson loops and hangs


class TestPoissonInjection:
    def test_multiple_arrivals_per_vcu_until_horizon(self):
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"poisson-{i}") for i in range(3)]
        injector = FaultInjector(sim, vcus, seed=3)
        # One expected arrival per VCU-minute over an hour: ~60 per VCU,
        # far more than the one-arrival-per-VCU the seed produced.
        events = injector.random_corruptions(60.0, until=3600.0)
        assert len(events) > 3 * 10
        assert all(e.at_time < 3600.0 for e in events)
        per_vcu = {v.vcu_id: 0 for v in vcus}
        for event in events:
            per_vcu[event.vcu_id] += 1
        assert all(count > 1 for count in per_vcu.values())

    def test_random_hangs_schedule_and_clear(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC, vcu_id="ph-0")
        injector = FaultInjector(sim, [vcu], seed=1)
        events = injector.random_hangs(3600.0, until=30.0, duration=5.0)
        assert events
        assert all(e.kind == "hang" for e in events)
        sim.run()
        assert not vcu.hung  # every transient hang cleared by its horizon

    def test_random_hard_faults_land_in_telemetry(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC, vcu_id="phf-0")
        injector = FaultInjector(sim, [vcu], seed=2)
        events = injector.random_hard_faults(
            3600.0, until=30.0, kind=FaultKind.ECC_UNCORRECTABLE
        )
        sim.run()
        assert vcu.telemetry.counters[FaultKind.ECC_UNCORRECTABLE] == len(events)

    def test_hang_at_requires_positive_duration(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC)
        with pytest.raises(ValueError):
            FaultInjector(sim, [vcu]).hang_at(1.0, vcu, duration=0.0)


# --------------------------------------------------------------------- #
# Watchdog + backoff inside the cluster


class TestWatchdogInCluster:
    def test_hung_step_is_recovered_and_completes_elsewhere(self):
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"wd-{i}") for i in range(2)]
        workers = [VcuWorker(v) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)],
            integrity_check_rate=1.0, seed=5,
            backoff=BackoffPolicy(base_seconds=1.0, jitter=0.0),
        )
        FaultInjector(sim, vcus).hang_at(1.0, vcus[0])  # wedged until repair
        g = graph("wd-video")
        cluster.submit(g)
        sim.run()
        assert g.completed_at is not None
        assert cluster.stats.hangs_detected >= 1
        assert cluster.stats.retries >= 1
        assert vcus[0].telemetry.counters[FaultKind.HANG] >= 1
        # No repair ever happens here, so the wedged worker must not be
        # back in service.
        assert workers[0].health is not HealthState.HEALTHY
        assert workers[1].health is HealthState.HEALTHY

    def test_backoff_delay_accrues_on_retries(self):
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"bo-{i}") for i in range(2)]
        vcus[0].mark_corrupt()
        workers = [VcuWorker(v, golden_screening=False) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)],
            integrity_check_rate=1.0, seed=6,
            backoff=BackoffPolicy(base_seconds=2.0, jitter=0.0),
        )
        g = graph("bo-video")
        cluster.submit(g)
        sim.run()
        assert g.completed_at is not None
        assert cluster.stats.retries >= 1
        assert cluster.stats.backoff_delay_seconds >= 2.0 * cluster.stats.retries

    def test_watchdog_can_be_disabled(self):
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"nowd-{i}") for i in range(2)]
        workers = [VcuWorker(v) for v in vcus]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=16)], seed=7, watchdog=None,
        )
        g = graph("nowd-video")
        cluster.submit(g)
        sim.run()
        assert g.completed_at is not None
        assert cluster.stats.hangs_detected == 0


class TestRehabilitation:
    def test_transient_hang_quarantine_then_return_to_service(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC, vcu_id="rehab-0")
        worker = VcuWorker(
            vcu,
            health_policy=HealthPolicy(
                strike_budget=1, rescreen_delay_seconds=20.0, screen_seconds=2.0
            ),
        )
        cluster = TranscodeCluster(
            sim, [worker], [],
            integrity_check_rate=1.0, seed=2,
            software_fallback=False, max_hardware_attempts=100,
            backoff=BackoffPolicy(base_seconds=2.0, jitter=0.0),
        )
        FaultInjector(sim, [vcu]).hang_at(0.5, vcu, duration=60.0)
        g = graph("rehab-video")
        cluster.submit(g)
        sim.run(until=4000.0)
        sim.run()
        # The fleet's only worker hung, was quarantined, and -- because the
        # hang was transient -- earned its way back via the golden battery;
        # the stalled graph then finished on the rehabilitated device.
        assert cluster.stats.hangs_detected >= 1
        assert cluster.stats.workers_quarantined == 1
        assert cluster.stats.workers_rehabilitated == 1
        assert worker.health is HealthState.HEALTHY
        assert g.completed_at is not None
        assert cluster.stats.corrupt_escaped == 0

    def test_bind_time_screening_failure_enters_rehab_loop(self):
        sim = Simulator()
        vcus = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"bind-{i}") for i in range(2)]
        vcus[0].mark_hung()  # fails the golden battery at bind time
        policy = HealthPolicy(rescreen_delay_seconds=10.0, screen_seconds=1.0)
        workers = [VcuWorker(v, health_policy=policy) for v in vcus]
        sim.call_in(5.0, vcus[0].clear_hang)  # the wedge clears on its own
        cluster = TranscodeCluster(sim, workers, [], seed=3)
        assert workers[0].health is HealthState.QUARANTINED
        g = graph("bind-video")
        cluster.submit(g)
        sim.run()
        assert workers[0].health is HealthState.HEALTHY
        assert cluster.stats.workers_rehabilitated == 1
        assert g.completed_at is not None

    def test_persistently_bad_device_is_disabled_not_readmitted(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC, vcu_id="bad-0")
        vcu.mark_corrupt()  # never passes a golden battery
        policy = HealthPolicy(
            rescreen_delay_seconds=5.0, screen_seconds=1.0,
            max_rescreen_failures=3,
        )
        worker = VcuWorker(vcu, health_policy=policy)
        cluster = TranscodeCluster(sim, [worker], [], seed=4)
        sim.run()
        assert worker.health is HealthState.DISABLED
        assert vcu.disabled
        assert cluster.stats.workers_rehabilitated == 0
        assert cluster.stats.workers_disabled == 1
        assert vcu.telemetry.counters[FaultKind.GOLDEN_FAIL] == 3


# --------------------------------------------------------------------- #
# Fleet management: sweeper, dedupe, placement-failure semantics


class TestFailureSweeper:
    def test_sweeper_runs_the_repair_workflow_unattended(self):
        sim = Simulator()
        host = small_host("sw")
        manager = FailureManager([host], repair_cap=1, card_swap_threshold=1)
        sweeper = FailureSweeper(
            sim, manager, interval_seconds=10.0, repair_seconds=50.0
        )
        sweeper.start(until=200.0)
        FaultInjector(sim, host.vcus).hard_fault_at(
            5.0, host.vcus[0], FaultKind.ECC_UNCORRECTABLE, count=3
        )
        sim.run()
        assert sweeper.sweeps >= 1
        assert "sw-vcu0" in manager.disabled_vcus
        assert sweeper.repairs_started == 1
        assert sweeper.repairs_completed == 1
        # The repair swapped the silicon: host usable, device enabled,
        # counters clean (no re-disable on the next sweep).
        assert not host.unusable
        assert not host.vcus[0].disabled
        assert host.vcus[0].telemetry.counters[FaultKind.ECC_UNCORRECTABLE] == 0

    def test_sweep_does_not_duplicate_waiting_hosts(self):
        hosts = [VcuHost() for _ in range(2)]
        manager = FailureManager(hosts, repair_cap=2)
        for vcu in hosts[0].vcus[:6]:
            vcu.telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
        manager.sweep()
        manager.sweep()
        manager.sweep()
        assert list(manager.repair_queue.waiting).count(hosts[0]) == 1

    def test_sweeper_validates_intervals(self):
        sim = Simulator()
        manager = FailureManager([])
        with pytest.raises(ValueError):
            FailureSweeper(sim, manager, interval_seconds=0.0)
        with pytest.raises(ValueError):
            FailureSweeper(sim, manager, repair_seconds=-1.0)


class TestPlacementFailureSemantics:
    def test_waiting_for_capacity_is_not_a_failed_placement(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC, vcu_id="cap-0")
        cluster = TranscodeCluster(
            sim, [VcuWorker(vcu)], [CpuWorker(cores=16)], seed=1
        )
        for i in range(4):  # far more work than one VCU admits at once
            cluster.submit(graph(f"cap-v{i}"))
        sim.run()
        assert cluster.stats.completed_graphs == 4
        assert cluster.stats.failed_placements == 0

    def test_no_remaining_path_is_a_genuine_failure(self):
        sim = Simulator()
        vcu = Vcu(DEFAULT_VCU_SPEC, vcu_id="dead-0")
        cluster = TranscodeCluster(sim, [VcuWorker(vcu)], [], seed=1)
        g = graph("dead-video")
        for step in g.transcode_steps():
            step.software_only = True  # no hardware path, no CPU fleet
        cluster.submit(g)
        sim.run()
        assert g.completed_at is None
        assert cluster.stats.failed_placements > 0


# --------------------------------------------------------------------- #
# The full lifecycle (satellite: corruption -> ... -> back in service)


def test_full_failure_lifecycle_returns_device_to_service():
    sim = Simulator()
    host = small_host("lc")
    policy = HealthPolicy(
        strike_budget=1, rescreen_delay_seconds=15.0, screen_seconds=2.0,
        rescreen_backoff=2.0, max_rescreen_failures=10,
    )
    workers = [VcuWorker(v, host=host, health_policy=policy) for v in host.vcus]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=16, name="lc-cpu")],
        integrity_check_rate=1.0, seed=9,
        backoff=BackoffPolicy(base_seconds=1.0, jitter=0.25),
    )
    manager = FailureManager([host], repair_cap=1, card_swap_threshold=1)
    sweeper = FailureSweeper(
        sim, manager, interval_seconds=20.0, repair_seconds=120.0, cluster=cluster
    )
    sweeper.start(until=1200.0)
    FaultInjector(sim, host.vcus, seed=9).corrupt_at(0.5, host.vcus[0])
    graphs = [graph(f"lc-v{i}") for i in range(6)]
    for i, g in enumerate(graphs):
        sim.call_in(3.0 * i, lambda g=g: cluster.submit(g))
    sim.run(until=1300.0)
    sim.run()

    # 1. The integrity check caught the corruption and quarantined the worker.
    assert cluster.stats.corrupt_caught >= 1
    assert cluster.stats.corrupt_escaped == 0
    assert cluster.stats.workers_quarantined >= 1
    # 2. Failed golden re-screens landed in telemetry and the sweep
    #    disabled the device, queueing the host for a card swap.
    assert host.vcus[0].telemetry.counters[FaultKind.GOLDEN_FAIL] == 0  # reset
    assert "lc-vcu0" in manager.disabled_vcus
    assert sweeper.repairs_completed >= 1
    # 3. After the repair, the golden battery passed and the worker
    #    returned to HEALTHY -- the one-way door is gone.
    assert cluster.stats.workers_rehabilitated >= 1
    assert workers[0].health is HealthState.HEALTHY
    assert not host.vcus[0].corrupt and not host.vcus[0].disabled
    # 4. All work completed clean despite the mid-run failure.
    assert all(g.completed_at is not None for g in graphs)
    assert all(not s.corrupt_output for g in graphs for s in g.transcode_steps())

    # 5. The rehabilitated device genuinely serves again.
    before = dict(cluster.stats.per_vcu_megapixels)
    late = graph("lc-late")
    cluster.submit(late)
    sim.run()
    assert late.completed_at is not None
    assert cluster.stats.per_vcu_megapixels.get("lc-vcu0", 0.0) > before.get(
        "lc-vcu0", 0.0
    )


# --------------------------------------------------------------------- #
# The chaos drill (acceptance): hangs + corruption + correlated host fault


def _chaos_run():
    sim = Simulator()
    hosts = [small_host("chaos-a"), small_host("chaos-b")]
    policy = HealthPolicy(
        strike_budget=2, rescreen_delay_seconds=20.0, screen_seconds=2.0,
        rescreen_backoff=2.0, max_rescreen_failures=3,
    )
    workers = [
        VcuWorker(v, host=h, health_policy=policy) for h in hosts for v in h.vcus
    ]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=32, name="chaos-cpu")],
        integrity_check_rate=1.0, seed=42,
        backoff=BackoffPolicy(base_seconds=1.0, max_seconds=20.0, jitter=0.5),
        fault_domain=FaultDomainPolicy(window_seconds=300.0, distinct_vcu_threshold=3),
        affinity_placement=True, affinity_size=3,
    )
    manager = FailureManager(hosts, repair_cap=1, card_swap_threshold=1)
    sweeper = FailureSweeper(
        sim, manager, interval_seconds=25.0, repair_seconds=150.0, cluster=cluster
    )
    sweeper.start(until=2500.0)
    injector = FaultInjector(sim, [v for h in hosts for v in h.vcus], seed=7)
    # Silent corruption on one device of host B.
    injector.corrupt_at(2.0, hosts[1].vcus[0])
    # A transient firmware wedge on another device of host B.
    injector.hang_at(10.0, hosts[1].vcus[1], duration=200.0)
    # A correlated chassis fault wedges every device of host A at once.
    injector.correlated_hangs(20.0, hosts[0].vcus, stagger_seconds=2.0)
    graphs = [graph(f"chaos-v{i}") for i in range(16)]
    for i, g in enumerate(graphs):
        sim.call_in(6.0 * i, lambda g=g: cluster.submit(g))
    sim.run(until=2500.0)
    sim.run()
    return sim, cluster, sweeper, graphs, hosts, workers


def test_chaos_drill_completes_everything_clean():
    sim, cluster, sweeper, graphs, hosts, workers = _chaos_run()
    # 100% of graphs completed despite hangs, corruption, and a host fault.
    assert all(g.completed_at is not None for g in graphs)
    assert cluster.stats.completed_graphs == len(graphs)
    # Zero escaped corruption at integrity_check_rate=1.0.
    assert cluster.stats.corrupt_escaped == 0
    assert all(not s.corrupt_output for g in graphs for s in g.transcode_steps())
    # The watchdog saw the hangs; the correlated wedge evicted host A.
    assert cluster.stats.hangs_detected >= 3
    assert cluster.stats.host_evictions >= 1
    assert "chaos-a" in cluster._fault_domains.evicted_hosts
    # The repair flow ran and at least one quarantined worker was
    # rehabilitated back to service.
    assert sweeper.repairs_completed >= 1
    assert cluster.stats.workers_quarantined >= 1
    assert cluster.stats.workers_rehabilitated >= 1

    # ... and a rehabilitated device serves real work again: submit a
    # fresh wave and check a previously-faulted, now-HEALTHY device
    # gains throughput.
    rehabbed = [
        w for w in workers
        if w.health is HealthState.HEALTHY
        and (
            w.vcu.telemetry.counters[FaultKind.HANG] > 0
            or w.vcu.telemetry.counters[FaultKind.RESET] > 0
            or w.name.startswith("worker:chaos-a")
        )
    ]
    assert rehabbed
    before = dict(cluster.stats.per_vcu_megapixels)
    for i in range(4):
        cluster.submit(graph(f"chaos-post-v{i}"))
    sim.run()
    gained = [
        w for w in rehabbed
        if cluster.stats.per_vcu_megapixels.get(w.vcu.vcu_id, 0.0)
        > before.get(w.vcu.vcu_id, 0.0)
    ]
    assert gained


def test_chaos_drill_is_deterministic_across_same_seed_runs():
    _, cluster_a, _, _, _, _ = _chaos_run()
    _, cluster_b, _, _, _, _ = _chaos_run()
    assert cluster_a.stats.counter_snapshot() == cluster_b.stats.counter_snapshot()


# --------------------------------------------------------------------- #
# The resilience/observability seam: the same drill, as seen by the hub


class TestObservabilitySeam:
    def test_exactly_one_health_span_per_state_change(self):
        with obs.installed() as hub:
            _, _, _, _, _, workers = _chaos_run()
        health = [s for s in hub.trace if s.kind == "health"]
        assert health  # the drill quarantines and rehabilitates workers
        by_worker = {}
        for span in health:
            by_worker.setdefault(span.name, []).append(span)
        for spans in by_worker.values():
            # Every span is a genuine change...
            assert all(s.attrs["from"] != s.attrs["to"] for s in spans)
            # ...and per-worker spans chain gaplessly from the initial
            # HEALTHY state: a duplicate emission would repeat a state, a
            # missed one would break a link.  Together: exactly one span
            # per transition.
            assert spans[0].attrs["from"] == HealthState.HEALTHY.value
            for prev, cur in zip(spans, spans[1:]):
                assert prev.attrs["to"] == cur.attrs["from"]
        # The last span per worker agrees with the live state machine.
        by_name = {w.name: w for w in workers}
        for name, spans in by_worker.items():
            assert by_name[name].health.value == spans[-1].attrs["to"]
        # And the mirrored counter saw every one of them.
        snapshot = hub.metrics.snapshot()
        assert snapshot["worker.health_transitions"] == len(health)

    def test_hang_and_retry_spans_reconcile_with_cluster_stats(self):
        with obs.installed() as hub:
            _, cluster, _, _, _, _ = _chaos_run()
        hangs = [s for s in hub.trace if s.kind == "hang"]
        retries = [s for s in hub.trace if s.kind == "retry"]
        assert len(hangs) == cluster.stats.hangs_detected
        assert len(retries) == cluster.stats.retries
        # Each watchdog strike names the worker it fired over, and every
        # strike is also a "hang"-outcome step span (the aborted attempt).
        assert all("worker" in s.attrs for s in hangs)
        hung_steps = [
            s for s in hub.trace
            if s.kind == "step" and s.attrs.get("outcome") == "hang"
        ]
        assert len(hung_steps) == len(hangs)

    def test_observed_drill_matches_unobserved_drill(self):
        # Observability must never perturb the simulation: the same drill
        # with and without a hub installed lands on identical counters.
        _, bare, _, _, _, _ = _chaos_run()
        with obs.installed():
            _, observed, _, _, _, _ = _chaos_run()
        assert bare.stats.counter_snapshot() == observed.stats.counter_snapshot()
