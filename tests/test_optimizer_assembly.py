"""Tests for the rate-quality optimizer and chunk assembly."""

import pytest

from repro.codec.optimizer import (
    OperatingPoint,
    convex_hull_points,
    pick_operating_point,
    rate_quality_curve,
)
from repro.codec.profiles import LIBX264, NVENC_H264, profile
from repro.harness.rd import rd_curve
from repro.metrics.quality import RDPoint, bd_rate
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.transcode.assembly import assemble, fault_correlation
from repro.video.frame import resolution
from repro.video.vbench import vbench_video


def op(bitrate, psnr, qp=30):
    return OperatingPoint(qp=qp, rd=RDPoint(bitrate=bitrate, psnr=psnr))


class TestConvexHull:
    def test_dominated_points_dropped(self):
        points = [op(1e6, 35), op(2e6, 34), op(3e6, 40)]  # 2 Mbps dominated
        hull = convex_hull_points(points)
        assert [p.bitrate for p in hull] == [1e6, 3e6]

    def test_below_hull_points_dropped(self):
        # The middle point lies below the chord between its neighbours.
        points = [op(1e6, 30), op(2e6, 30.5), op(4e6, 40)]
        hull = convex_hull_points(points)
        assert [p.bitrate for p in hull] == [1e6, 4e6]

    def test_concave_set_kept_whole(self):
        points = [op(1e6, 30), op(2e6, 36), op(4e6, 39)]  # decreasing slopes
        hull = convex_hull_points(points)
        assert len(hull) == 3

    def test_hull_of_real_curve(self, tiny_video):
        curve = rate_quality_curve(tiny_video, LIBX264, qps=(20, 28, 36, 44))
        hull = convex_hull_points(curve)
        assert 2 <= len(hull) <= 4
        bitrates = [p.bitrate for p in hull]
        assert bitrates == sorted(bitrates)


class TestPickOperatingPoint:
    POINTS = [op(1e6, 30, qp=44), op(2e6, 35, qp=36), op(4e6, 39, qp=28)]

    def test_quality_floor_picks_cheapest(self):
        chosen = pick_operating_point(self.POINTS, min_psnr=34)
        assert chosen.bitrate == 2e6

    def test_bitrate_cap_picks_best_quality(self):
        chosen = pick_operating_point(self.POINTS, max_bitrate=2.5e6)
        assert chosen.psnr == 35

    def test_both_constraints(self):
        chosen = pick_operating_point(self.POINTS, min_psnr=31, max_bitrate=2.5e6)
        assert chosen.bitrate == 2e6

    def test_infeasible_returns_none(self):
        assert pick_operating_point(self.POINTS, min_psnr=50) is None

    def test_requires_a_constraint(self):
        with pytest.raises(ValueError):
            pick_operating_point(self.POINTS)


class TestNvencProfile:
    def test_lookup(self):
        assert profile("nvenc-h264") is NVENC_H264

    def test_quality_clearly_below_libx264(self):
        # Section 5: commodity GPU encoder quality is only comparable to
        # libx264's fast presets, i.e. clearly worse than medium.
        title = vbench_video("house")
        ref = rd_curve(LIBX264, title, frame_count=5, proxy_height=54)
        test = rd_curve(NVENC_H264, title, frame_count=5, proxy_height=54)
        gap = bd_rate(ref, test)
        assert 8.0 <= gap <= 45.0


def _completed_graph(use_mot=True, frames=300):
    graph = build_transcode_graph(
        "v1", resolution("720p"), total_frames=frames, fps=30.0,
        bucket=PopularityBucket.WARM, use_mot=use_mot,
    )
    for index, step in enumerate(graph.transcode_steps()):
        step.processed_by = f"vcu-{index % 3}"
    return graph


class TestAssembly:
    def test_complete_mot_graph_assembles(self):
        graph = _completed_graph()
        report = assemble(graph, expected_frames=300)
        assert report.length_check_passed
        assert report.playable
        # 2 codecs x 5 rungs of the 720p ladder.
        assert len(report.variants) == 10

    def test_sot_graph_assembles_identically(self):
        mot = assemble(_completed_graph(use_mot=True), 300)
        sot = assemble(_completed_graph(use_mot=False), 300)
        assert set(mot.variants) == set(sot.variants)
        for key in mot.variants:
            assert mot.variants[key].total_frames == sot.variants[key].total_frames

    def test_length_check_catches_frame_mismatch(self):
        graph = _completed_graph(frames=290)  # 2 chunks: 150 + 140
        report = assemble(graph, expected_frames=300)
        assert not report.length_check_passed

    def test_corrupt_chunk_breaks_playability(self):
        graph = _completed_graph()
        victim = graph.transcode_steps()[0]
        victim.corrupt_output = True
        report = assemble(graph, expected_frames=300)
        assert report.length_check_passed  # length alone can't see this
        assert not report.playable
        assert report.corrupt_variant_count() >= 1

    def test_fault_correlation_finds_culprit(self):
        graph = _completed_graph()
        victim = graph.transcode_steps()[0]
        victim.corrupt_output = True
        suspects = fault_correlation([graph])
        assert suspects == {victim.processed_by: ["v1"]}
