"""Unit tests for the metrics registry: counters, gauges, histograms.

Also locks down :class:`UtilizationTracker`'s new home in ``repro.obs``
(the cluster's ``metrics`` module re-exports it) and the monotonic-time
contract of ``record``/``average`` -- both directions of the clock check.
"""

import typing

import pytest

from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedGauge,
    UtilizationTracker,
)


class TestCounter:
    def test_increments_default_one(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            hist.observe(value)
        # <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=4: {3.0, 4.0}; inf: {100.0}
        assert hist.counts == [2, 2, 2, 1]
        assert hist.total == 7
        assert hist.sum == pytest.approx(112.0)

    def test_cumulative_is_monotone_and_ends_at_total(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.2, 5.0, 50.0, 0.9):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == hist.total == 4

    def test_merge_is_bucketwise_addition(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        merged = a.merge(b)
        assert merged.counts == [1, 1, 1]
        assert merged.total == 3
        assert merged.sum == pytest.approx(11.0)
        # Merge does not mutate its inputs.
        assert a.total == 1 and b.total == 2

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0,)).merge(Histogram("h", bounds=(2.0,)))

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_quantile_returns_bucket_upper_bound(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            hist.observe(value)
        # Counts [2, 2, 4]: p25 lands in <=1, p50 in <=2, p99 in <=4.
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.50) == 2.0
        assert hist.quantile(0.99) == 4.0
        assert hist.quantile(1.0) == 4.0

    def test_quantile_overflow_reports_last_finite_bound(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        for _ in range(9):
            hist.observe(50.0)  # overflow bucket
        assert hist.quantile(0.05) == 1.0
        # The top of the distribution is beyond the finite bounds; the
        # best the histogram can say is "at least the last bound".
        assert hist.quantile(0.99) == 2.0

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("h", bounds=(1.0,)).quantile(0.5) == 0.0

    def test_quantile_validates_q(self):
        hist = Histogram("h", bounds=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.1)


class TestUtilizationTracker:
    def test_lives_in_obs_and_is_reexported_by_cluster_metrics(self):
        from repro.cluster.metrics import UtilizationTracker as reexported

        assert reexported is UtilizationTracker

    def test_time_weighted_average(self):
        tracker = UtilizationTracker()
        tracker.record(0.0, 1.0)
        tracker.record(10.0, 0.0)
        assert tracker.average(20.0) == pytest.approx(0.5)

    def test_average_accepts_none_and_uses_last_sample_time(self):
        tracker = UtilizationTracker()
        tracker.record(0.0, 0.5)
        tracker.record(10.0, 1.0)
        assert tracker.average() == pytest.approx(0.5)
        assert tracker.average(None) == tracker.average()

    def test_average_annotation_is_optional_float(self):
        hints = typing.get_type_hints(UtilizationTracker.average)
        assert hints["now"] == typing.Optional[float]
        assert hints["return"] is float

    def test_record_rejects_time_going_backwards(self):
        tracker = UtilizationTracker()
        tracker.record(10.0, 1.0)
        with pytest.raises(ValueError):
            tracker.record(5.0, 0.5)

    def test_average_rejects_time_going_backwards(self):
        tracker = UtilizationTracker()
        tracker.record(10.0, 1.0)
        with pytest.raises(ValueError):
            tracker.average(5.0)

    def test_empty_span_averages_to_zero(self):
        assert UtilizationTracker().average() == 0.0
        assert UtilizationTracker(start_time=5.0).average(5.0) == 0.0


class TestTimeWeightedGauge:
    def test_wraps_the_tracker(self):
        gauge = TimeWeightedGauge("tg")
        gauge.set(0.0, 4.0)
        gauge.set(10.0, 0.0)
        assert gauge.average(10.0) == pytest.approx(4.0)
        assert gauge.current == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert "a" in registry and "missing" not in registry
        assert registry.names() == ["a", "h"]

    def test_name_cannot_change_instrument_type(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_flattens_every_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("level").set(0.25)
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        tg = registry.time_gauge("util")
        tg.set(0.0, 1.0)
        tg.set(10.0, 0.0)
        snap = registry.snapshot(now=10.0)
        assert snap["events"] == 3.0
        assert snap["level"] == 0.25
        assert snap["lat.count"] == 2.0
        assert snap["lat.sum"] == 5.5
        assert snap["lat.le.1"] == 1.0
        assert snap["lat.le.2"] == 1.0
        assert snap["lat.le.inf"] == 2.0
        assert snap["util.avg"] == pytest.approx(1.0)
        assert snap["util.current"] == 0.0
        assert list(snap) == sorted(snap)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(set(DEFAULT_SECONDS_BUCKETS))


class TestRegistryMerge:
    """``MetricsRegistry.merge``: the runner's roll-in primitive."""

    def test_counters_add_and_gauges_last_win(self):
        target, other = MetricsRegistry(), MetricsRegistry()
        target.counter("events").inc(2)
        target.gauge("level").set(0.5)
        other.counter("events").inc(3)
        other.gauge("level").set(0.25)
        target.merge(other)
        assert target.counter("events").value == 5
        assert target.gauge("level").value == 0.25

    def test_new_instruments_materialize_in_target(self):
        target, other = MetricsRegistry(), MetricsRegistry()
        other.counter("fresh").inc(7)
        target.merge(other)
        assert target.counter("fresh").value == 7

    def test_histograms_merge_bucketwise(self):
        target, other = MetricsRegistry(), MetricsRegistry()
        bounds = (1.0, 2.0)
        target.histogram("lat", bounds=bounds).observe(0.5)
        other.histogram("lat", bounds=bounds).observe(1.5)
        other.histogram("lat", bounds=bounds).observe(5.0)
        target.merge(other)
        snap = target.snapshot()
        assert snap["lat.count"] == 3.0
        assert snap["lat.le.1"] == 1.0
        assert snap["lat.le.2"] == 2.0
        assert snap["lat.le.inf"] == 3.0
        assert snap["lat.sum"] == 7.0

    def test_histogram_bound_mismatch_raises(self):
        target, other = MetricsRegistry(), MetricsRegistry()
        target.histogram("lat", bounds=(1.0,)).observe(0.5)
        other.histogram("lat", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            target.merge(other)

    def test_time_weighted_gauges_refuse_to_merge(self):
        target, other = MetricsRegistry(), MetricsRegistry()
        other.time_gauge("util").set(0.0, 1.0)
        with pytest.raises(ValueError, match="clock basis"):
            target.merge(other)

    def test_merge_is_idempotent_on_empty_source(self):
        target = MetricsRegistry()
        target.counter("events").inc(1)
        target.merge(MetricsRegistry())
        assert target.snapshot() == {"events": 1.0}
