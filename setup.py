"""Setuptools entry point.

Kept alongside pyproject.toml so `python setup.py develop` works in offline
environments that lack the `wheel` package required by PEP 517 editable
installs (`pip install -e .` uses this path too when wheel is available).
"""
from setuptools import setup

setup()
