#!/usr/bin/env python3
"""Live streaming: why VP9 live needed the VCU (Section 4.5).

Simulates one 1080p live broadcast two ways:

* the software era -- 2-second chunks fanned out over 6 parallel libvpx
  encoders, each taking ~10 jittery seconds per chunk, and
* the VCU era -- a single device transcoding the whole MOT ladder in
  real time with deterministic speed.

Prints per-chunk readiness, the latency each pipeline can guarantee, and
the Stadia cloud-gaming frame budget check.

Run:  python examples/live_streaming.py
"""

from __future__ import annotations

import numpy as np

from repro.metrics import format_table
from repro.workloads.gaming import GamingSession, gaming_latency_ms, meets_frame_budget
from repro.workloads.live import (
    LiveStream,
    end_to_end_latency_seconds,
    simulate_live_stream,
)


def main() -> None:
    stream = LiveStream("demo", chunk_seconds=2.0)
    duration = 120.0

    software = simulate_live_stream(stream, duration, use_vcu=False, seed=7)
    hardware = simulate_live_stream(stream, duration, use_vcu=True)

    rows = []
    for name, results in (("software x6", software), ("single VCU", hardware)):
        encode_times = [r.encode_seconds for r in results]
        lateness = [
            r.ready_at - (r.chunk_index + 1) * stream.chunk_seconds for r in results
        ]
        rows.append([
            name,
            round(float(np.mean(encode_times)), 2),
            round(float(np.std(encode_times)), 3),
            round(float(np.percentile(lateness, 99)), 2),
            round(end_to_end_latency_seconds(results, stream.chunk_seconds), 1),
        ])
    print(format_table(
        ["Pipeline", "Encode s/chunk", "Jitter (std)", "p99 backlog s",
         "Camera-to-eyeball s"],
        rows,
        title="Live VP9 1080p broadcast: chunk-parallel software vs one VCU",
    ))

    print("\nThe software pipeline only keeps up by deepening the buffer,")
    print("so its end-to-end latency balloons; the VCU's consistent")
    print("hardware speed is what makes the ~5-second stream affordable.\n")

    session = GamingSession()  # Stadia: 4K60 VP9 at 35 Mbps
    vcu_ms = gaming_latency_ms(session, use_vcu=True)
    sw_ms = gaming_latency_ms(session, use_vcu=False)
    print(f"Stadia check (4K60, {session.bitrate_mbps:.0f} Mbps, budget "
          f"{session.frame_budget_ms:.1f} ms/frame):")
    print(f"  VCU low-latency two-pass VP9: {vcu_ms:5.1f} ms/frame "
          f"-> {'MEETS' if meets_frame_budget(session, True) else 'misses'} budget")
    print(f"  software realtime VP9:        {sw_ms:5.0f} ms/frame "
          f"-> {'meets' if meets_frame_budget(session, False) else 'MISSES'} budget")


if __name__ == "__main__":
    main()
