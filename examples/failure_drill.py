#!/usr/bin/env python3
"""Failure drill: black-holing, golden screening, and the repair flow.

Reproduces Section 4.4's failure story end to end on a small cluster:

1. inject a silent corruption into one VCU of four,
2. run the upload workload twice -- once with no mitigations (watch the
   failing-but-fast device black-hole traffic and corrupt chunks escape),
   once with integrity checks + golden-task screening,
3. then run the fleet-level workflow: telemetry sweep, per-VCU disable,
   and the capped repair queue.

Run:  python examples/failure_drill.py
"""

from __future__ import annotations

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.failures import FailureManager, FaultInjector, RepairQueue
from repro.failures.management import blast_radius
from repro.metrics import format_table
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution


def run_cluster(mitigated: bool):
    sim = Simulator()
    devices = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"drill-{mitigated}-{i}") for i in range(4)]
    devices[0].mark_corrupt()
    workers = [VcuWorker(v, golden_screening=mitigated) for v in devices]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=24)],
        integrity_check_rate=0.95 if mitigated else 0.0, seed=13,
    )
    graphs = [
        build_transcode_graph(f"v{i}", resolution("720p"), 300, 30.0,
                              bucket=PopularityBucket.WARM)
        for i in range(10)
    ]
    for graph in graphs:
        cluster.submit(graph)
    sim.run()
    processed = [s.processed_by for g in graphs for s in g.transcode_steps()]
    share = blast_radius(processed, devices[0].vcu_id) / len(processed)
    return cluster.stats, share


def main() -> None:
    rows = []
    for mitigated in (False, True):
        stats, share = run_cluster(mitigated)
        rows.append([
            "mitigated" if mitigated else "unmitigated",
            f"{share:.0%}",
            stats.corrupt_escaped,
            stats.corrupt_caught,
            stats.retries,
            stats.completed_graphs,
        ])
    print(format_table(
        ["Run", "Traffic to bad VCU", "Corrupt escaped", "Caught", "Retries", "Videos done"],
        rows, title="Black-holing drill: 1 silently-corrupt VCU out of 4",
    ))

    print("\nFleet workflow: telemetry sweep -> disable -> capped repair")
    hosts = [VcuHost() for _ in range(3)]
    manager = FailureManager(hosts, repair_cap=1)
    injector_sim = Simulator()
    FaultInjector(injector_sim, hosts[0].vcus).hard_fault_at(
        1.0, hosts[0].vcus[2], FaultKind.ECC_UNCORRECTABLE, count=5
    )
    injector_sim.run()
    disabled = manager.sweep()
    print(f"  sweep disabled: {disabled} "
          f"(host 0 keeps serving with {len(hosts[0].healthy_vcus())}/20 VCUs)")

    # Escalate host 1 past its component-fault budget.
    for vcu in hosts[1].vcus[:6]:
        vcu.telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
    manager.sweep()
    print(f"  host 1 unusable: {hosts[1].unusable}; fleet capacity "
          f"{manager.fleet_capacity_fraction():.0%}")

    queue: RepairQueue = manager.repair_queue
    queue.start_repairs()
    for host in list(queue.in_repair):
        queue.finish_repair(host)
    print(f"  after repair: fleet capacity {manager.fleet_capacity_fraction():.0%}, "
          f"hosts repaired: {len(queue.repaired)}")


if __name__ == "__main__":
    main()
