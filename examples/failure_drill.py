#!/usr/bin/env python3
"""Failure drill: black-holing, golden screening, and the repair flow.

Reproduces Section 4.4's failure story end to end on a small cluster:

1. inject a silent corruption into one VCU of four,
2. run the upload workload twice -- once with no mitigations (watch the
   failing-but-fast device black-hole traffic and corrupt chunks escape),
   once with integrity checks + golden-task screening,
3. then run the fleet-level workflow: telemetry sweep, per-VCU disable,
   and the capped repair queue,
4. finally an *unattended* chaos drill: hangs, silent corruption, and a
   correlated host fault land mid-run while the always-on resilience
   loop (watchdog deadlines, backoff retries, the health-state machine
   with golden-battery rehabilitation, fault-domain eviction, and the
   periodic failure sweeper) recovers everything without operator help.

Run:  python examples/failure_drill.py
      python examples/failure_drill.py --trace drill.jsonl --metrics-out drill.json
      repro-bench report drill.jsonl
"""

from __future__ import annotations

import argparse
import json

from repro import obs
from repro.cluster import (
    CpuWorker,
    HealthPolicy,
    HealthState,
    TranscodeCluster,
    VcuWorker,
)
from repro.failures import (
    BackoffPolicy,
    FailureManager,
    FailureSweeper,
    FaultDomainPolicy,
    FaultInjector,
    RepairQueue,
)
from repro.failures.management import blast_radius
from repro.metrics import format_table
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.spec import DEFAULT_VCU_SPEC, HostSpec
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution


def run_cluster(mitigated: bool):
    sim = Simulator()
    devices = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"drill-{mitigated}-{i}") for i in range(4)]
    devices[0].mark_corrupt()
    workers = [VcuWorker(v, golden_screening=mitigated) for v in devices]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=24)],
        integrity_check_rate=0.95 if mitigated else 0.0, seed=13,
    )
    graphs = [
        build_transcode_graph(f"v{i}", resolution("720p"), 300, 30.0,
                              bucket=PopularityBucket.WARM)
        for i in range(10)
    ]
    for graph in graphs:
        cluster.submit(graph)
    sim.run()
    processed = [s.processed_by for g in graphs for s in g.transcode_steps()]
    share = blast_radius(processed, devices[0].vcu_id) / len(processed)
    return cluster.stats, share


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default=None,
                        help="write the chaos drill's JSONL trace here")
    parser.add_argument("--metrics-out", default=None,
                        help="write the chaos drill's metrics snapshot (JSON) here")
    args = parser.parse_args(argv)

    rows = []
    for mitigated in (False, True):
        stats, share = run_cluster(mitigated)
        rows.append([
            "mitigated" if mitigated else "unmitigated",
            f"{share:.0%}",
            stats.corrupt_escaped,
            stats.corrupt_caught,
            stats.retries,
            stats.completed_graphs,
        ])
    print(format_table(
        ["Run", "Traffic to bad VCU", "Corrupt escaped", "Caught", "Retries", "Videos done"],
        rows, title="Black-holing drill: 1 silently-corrupt VCU out of 4",
    ))

    print("\nFleet workflow: telemetry sweep -> disable -> capped repair")
    hosts = [VcuHost() for _ in range(3)]
    manager = FailureManager(hosts, repair_cap=1)
    injector_sim = Simulator()
    FaultInjector(injector_sim, hosts[0].vcus).hard_fault_at(
        1.0, hosts[0].vcus[2], FaultKind.ECC_UNCORRECTABLE, count=5
    )
    injector_sim.run()
    disabled = manager.sweep()
    print(f"  sweep disabled: {disabled} "
          f"(host 0 keeps serving with {len(hosts[0].healthy_vcus())}/20 VCUs)")

    # Escalate host 1 past its component-fault budget.
    for vcu in hosts[1].vcus[:6]:
        vcu.telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
    manager.sweep()
    print(f"  host 1 unusable: {hosts[1].unusable}; fleet capacity "
          f"{manager.fleet_capacity_fraction():.0%}")

    queue: RepairQueue = manager.repair_queue
    queue.start_repairs()
    for host in list(queue.in_repair):
        queue.finish_repair(host)
    print(f"  after repair: fleet capacity {manager.fleet_capacity_fraction():.0%}, "
          f"hosts repaired: {len(queue.repaired)}")

    chaos_drill(trace_path=args.trace, metrics_out=args.metrics_out)


def _small_host(tag: str) -> VcuHost:
    host = VcuHost(
        host_spec=HostSpec(vcus_per_card=2, cards_per_tray=2, trays_per_host=1),
        host_id=tag,
    )
    for index, vcu in enumerate(host.vcus):
        vcu.vcu_id = f"{tag}-vcu{index}"
        vcu.telemetry.vcu_id = vcu.vcu_id
    return host


def chaos_drill(trace_path=None, metrics_out=None) -> None:
    """The unattended drill: no manual sweeps, no manual repairs.

    Two 4-VCU hosts.  Mid-run we silently corrupt one device, wedge a
    second transiently, and hit every VCU of host A with a correlated
    chassis hang.  Watchdog deadlines convert the hangs into telemetry
    strikes, the health-state machine quarantines strikers, correlated
    strikes evict host A wholesale, the periodic sweeper repairs it, and
    golden re-screens return the devices to service -- while every video
    still completes with zero escaped corruption.
    """
    print("\nUnattended chaos drill: watchdog + health machine + sweeper")
    hub = obs.install()
    try:
        _run_chaos()
    finally:
        obs.uninstall()
    if trace_path:
        hub.trace.write_jsonl(trace_path)
        print(f"  trace written to {trace_path} ({len(hub.trace.spans)} spans)")
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as fh:
            json.dump(hub.metrics.snapshot(now=2500.0), fh, indent=2, sort_keys=True)
        print(f"  metrics snapshot written to {metrics_out}")


def _run_chaos() -> None:
    sim = Simulator()
    hosts = [_small_host("chaos-a"), _small_host("chaos-b")]
    policy = HealthPolicy(
        strike_budget=2, rescreen_delay_seconds=20.0, screen_seconds=2.0,
        rescreen_backoff=2.0, max_rescreen_failures=3,
    )
    workers = [
        VcuWorker(v, host=h, health_policy=policy) for h in hosts for v in h.vcus
    ]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=32, name="chaos-cpu")],
        integrity_check_rate=1.0, seed=42,
        backoff=BackoffPolicy(base_seconds=1.0, max_seconds=20.0, jitter=0.5),
        fault_domain=FaultDomainPolicy(window_seconds=300.0, distinct_vcu_threshold=3),
        affinity_placement=True, affinity_size=3,
    )
    manager = FailureManager(hosts, repair_cap=1, card_swap_threshold=1)
    sweeper = FailureSweeper(
        sim, manager, interval_seconds=25.0, repair_seconds=150.0, cluster=cluster
    )
    sweeper.start(until=2500.0)

    injector = FaultInjector(sim, [v for h in hosts for v in h.vcus], seed=7)
    injector.corrupt_at(2.0, hosts[1].vcus[0])
    injector.hang_at(10.0, hosts[1].vcus[1], duration=200.0)
    injector.correlated_hangs(20.0, hosts[0].vcus, stagger_seconds=2.0)

    graphs = [
        build_transcode_graph(f"chaos-v{i}", resolution("720p"), 300, 30.0,
                              bucket=PopularityBucket.WARM)
        for i in range(16)
    ]
    for i, g in enumerate(graphs):
        sim.call_in(6.0 * i, lambda g=g: cluster.submit(g))
    sim.run(until=2500.0)
    sim.run()

    stats = cluster.stats
    healthy = sum(1 for w in workers if w.health is HealthState.HEALTHY)
    print(f"  graphs completed: {stats.completed_graphs}/{len(graphs)}; "
          f"corrupt escaped: {stats.corrupt_escaped}")
    print(f"  hangs detected by watchdog: {stats.hangs_detected}; "
          f"retries: {stats.retries} "
          f"(total backoff {stats.backoff_delay_seconds:.0f}s)")
    print(f"  workers quarantined: {stats.workers_quarantined}, "
          f"rehabilitated: {stats.workers_rehabilitated}, "
          f"disabled: {stats.workers_disabled}; "
          f"hosts evicted: {stats.host_evictions}")
    print(f"  sweeper: {sweeper.sweeps} sweeps, "
          f"{sweeper.repairs_completed} repairs completed; "
          f"healthy workers at end: {healthy}/{len(workers)}")
    assert stats.completed_graphs == len(graphs)
    assert stats.corrupt_escaped == 0


if __name__ == "__main__":
    main()
