#!/usr/bin/env python3
"""Per-video rate-quality optimization across popularity buckets.

Section 2.1 describes advanced encoding systems that measure per-video
rate-quality curves at multiple operating points and choose better
quality/compression trade-offs at extra compute cost; Section 2.2 ties
the spend to popularity (head videos earn extra passes, the long tail
gets the cheapest playable encode).

This example measures a *real* rate-quality curve per title with the
functional codec, reduces it to its convex hull, and picks operating
points under the three bucket policies.

Run:  python examples/dynamic_optimizer.py   (~1 minute on one core)
"""

from __future__ import annotations

from repro.codec.optimizer import (
    convex_hull_points,
    pick_operating_point,
    rate_quality_curve,
)
from repro.codec.profiles import VCU_VP9
from repro.metrics import format_table
from repro.video.content import SyntheticVideo
from repro.video.vbench import vbench_video

TITLES = ("desktop", "cricket", "holi")

#: Bucket policies: (min PSNR floor, max bitrate cap in Mbps at 1080p).
POLICIES = {
    "hot (head)": dict(max_bitrate=40e6),
    "warm (middle)": dict(min_psnr=38.0),
    "cold (tail)": dict(min_psnr=34.0),
}


def main() -> None:
    rows = []
    for name in TITLES:
        title = vbench_video(name)
        video = SyntheticVideo(title.spec, seed=3, proxy_height=54).video(6)
        curve = rate_quality_curve(video, VCU_VP9, qps=(18, 26, 34, 42, 48))
        hull = convex_hull_points(curve)
        print(f"{name}: {len(curve)} operating points measured, "
              f"{len(hull)} on the convex hull")
        for policy_name, constraints in POLICIES.items():
            point = pick_operating_point(hull, **constraints)
            if point is None:
                rows.append([name, policy_name, "-", "-", "-"])
            else:
                rows.append([
                    name, policy_name, point.qp,
                    round(point.psnr, 1), round(point.bitrate / 1e6, 2),
                ])

    print()
    print(format_table(
        ["Title", "Bucket policy", "QP", "PSNR dB", "Mbps"],
        rows, title="Chosen operating points per popularity bucket (VCU VP9)",
    ))
    print("\nHarder content needs more bits to clear the same quality floor,")
    print("and the tail policy always lands at a cheaper point than the")
    print("middle one -- the cost structure Section 2.2 describes.")


if __name__ == "__main__":
    main()
