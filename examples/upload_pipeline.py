#!/usr/bin/env python3
"""Upload pipeline: a day in the life of a (scaled-down) VCU cluster.

Builds a cluster of VCU workers plus legacy CPU machines, submits a
stream of synthetic uploads (production-like resolution mix and
stretched-power-law popularity), and reports what the warehouse operator
would watch: per-VCU throughput, dimension utilizations, queue depth,
graph latency percentiles, and the MOT-vs-SOT comparison of Figure 8.

Run:  python examples/upload_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.metrics import format_table
from repro.sim import Simulator
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.workloads.upload import UploadGenerator

VCUS = 4
HORIZON = 60.0


def run(use_mot: bool, seed: int = 42):
    sim = Simulator()
    workers = [
        VcuWorker(
            Vcu(DEFAULT_VCU_SPEC, vcu_id=f"ex-{use_mot}-{i}"),
            target_speedup=5.0 if use_mot else 2.5,
        )
        for i in range(VCUS)
    ]
    cluster = TranscodeCluster(sim, workers, [CpuWorker(cores=24)], seed=seed)
    generator = UploadGenerator(
        arrivals_per_second=0.1 * VCUS, seed=seed, mean_duration_seconds=30.0
    )
    submitted = 0
    for video in generator.videos(until=HORIZON):
        graph = generator.to_graph(video, use_mot=use_mot)
        sim.call_at(video.arrival_time, lambda g=graph: cluster.submit(g))
        submitted += 1
    end = sim.run(until=HORIZON)
    return cluster, submitted, end


def main() -> None:
    rows = []
    for use_mot in (True, False):
        cluster, submitted, end = run(use_mot)
        stats = cluster.stats
        per_vcu = stats.per_vcu_mpix_per_second(end, VCUS)
        latencies = stats.graph_latencies or [float("nan")]
        rows.append([
            "MOT" if use_mot else "SOT",
            submitted,
            stats.completed_graphs,
            round(per_vcu),
            round(cluster.encoder_util.average(end), 2),
            round(cluster.decoder_util.average(end), 2),
            round(float(np.median(latencies)), 1),
            cluster.pending_count,
        ])

    print(format_table(
        ["Mode", "Videos in", "Videos done", "Mpix/s per VCU",
         "Enc util", "Dec util", "Median latency s", "Still queued"],
        rows,
        title=f"Upload pipeline on {VCUS} VCUs, {HORIZON:.0f}s horizon "
              "(Figure 8's MOT-vs-SOT in miniature)",
    ))
    print("\nMOT decodes each chunk once for the whole output ladder; SOT")
    print("re-decodes per output variant, which is why its per-VCU Mpix/s")
    print("is so much lower on the same hardware.")


if __name__ == "__main__":
    main()
