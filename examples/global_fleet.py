#!/usr/bin/env python3
"""Global fleet operations: geographic routing, pools, and autoscaling.

The layer above a single cluster (Section 2.2 / 3.3.3): uploads originate
around the world and route to the nearest cluster with headroom (spilling
when local capacity runs out), while inside a cluster the logical pools
trade workers as demand shifts between upload and live traffic.

Run:  python examples/global_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.autoscale import AutoscaleConfig, Autoscaler
from repro.cluster.pool import Pool, PoolKey, Priority, UseCase
from repro.cluster.regions import ClusterSite, GlobalScheduler
from repro.cluster.worker import VcuWorker
from repro.metrics import format_table
from repro.sim.rng import make_rng
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC


def routing_demo() -> None:
    sites = [
        ClusterSite("us-west", "us", location=(0, 0), capacity=60),
        ClusterSite("us-east", "us", location=(40, 0), capacity=60),
        ClusterSite("eu-west", "eu", location=(90, 10), capacity=45),
        ClusterSite("apac", "apac", location=(160, -10), capacity=30),
    ]
    scheduler = GlobalScheduler(sites)
    rng = make_rng(7)
    # Upload origins clustered around population centres.
    centres = [(2, 1), (38, -2), (88, 12), (158, -8)]
    weights = [0.35, 0.25, 0.25, 0.15]
    for _ in range(170):
        cx, cy = centres[int(rng.choice(len(centres), p=weights))]
        origin = (cx + float(rng.normal(0, 6)), cy + float(rng.normal(0, 6)))
        scheduler.route(origin)

    rows = [
        [s.name, s.region, s.capacity, s.routed_total,
         f"{s.in_flight}/{s.capacity}"]
        for s in sites
    ]
    print(format_table(
        ["Cluster", "Region", "Capacity", "Routed", "In flight"],
        rows, title="Global routing: 170 uploads, nearest-with-headroom",
    ))
    print(f"spilled to a non-nearest cluster: {scheduler.spill_count}, "
          f"rejected: {scheduler.reject_count}")
    print(f"US regional imbalance (max/min routed): "
          f"{scheduler.regional_imbalance('us'):.2f} (1.0 = the Appendix A.1 ideal)\n")


def autoscale_demo() -> None:
    upload = Pool(PoolKey(Priority.NORMAL, UseCase.UPLOAD))
    live = Pool(PoolKey(Priority.CRITICAL, UseCase.LIVE))
    upload.workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"gf-u{i}")) for i in range(8)
    ]
    live.workers = [
        VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"gf-l{i}")) for i in range(2)
    ]
    pools = {upload.key: upload, live.key: live}
    scaler = Autoscaler(pools, AutoscaleConfig(workers_per_step=1))

    print("A live event spikes the live pool's backlog:")
    live.pending_steps = 30
    tick = 0
    while live.demand_pressure() > scaler.config.scale_up_pressure and tick < 10:
        tick += 1
        actions = scaler.step()
        # The live pool also drains some backlog each tick.
        live.pending_steps = max(0, live.pending_steps - 4 * len(live.workers))
        moved = sum(a.workers for a in actions)
        print(f"  tick {tick}: moved {moved} worker(s); live pool "
              f"{len(live.workers)} workers, backlog {live.pending_steps}, "
              f"upload pool {len(upload.workers)} workers")
    print(f"fleet conserved: {scaler.total_workers()} workers total; "
          f"{len(scaler.history)} scaling actions recorded")


def main() -> None:
    routing_demo()
    autoscale_demo()


if __name__ == "__main__":
    main()
