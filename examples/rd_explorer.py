#!/usr/bin/env python3
"""RD explorer: sweep QPs across vbench titles and compute BD-rates.

A compact version of the Figure 7 experiment on a title subset: encodes
three titles of increasing difficulty with all four encoder profiles,
prints each operational RD curve as ASCII, and reports the BD-rate
comparisons the paper quotes.

Run:  python examples/rd_explorer.py          (about a minute on 1 core)
"""

from __future__ import annotations

from repro.codec.profiles import ALL_PROFILES
from repro.harness.rd import suite_bd_rates, suite_rd_curves
from repro.metrics import format_table
from repro.video.vbench import vbench_video

TITLES = [vbench_video(name) for name in ("desktop", "house", "holi")]


def ascii_curve(points, width=40) -> str:
    """One-line sparkline: PSNR (dB) at each QP rung, low QP first."""
    return " ".join(f"{p.psnr:.1f}dB@{p.bitrate/1e6:.2f}Mbps" for p in points)


def main() -> None:
    print(f"sweeping {len(TITLES)} titles x {len(ALL_PROFILES)} encoders x 5 QPs ...")
    curves = suite_rd_curves(
        titles=TITLES, frame_count=6, proxy_height=54,
    )
    for title in TITLES:
        print(f"\n{title.name} (difficulty rank {title.difficulty_rank}/14):")
        for profile in ALL_PROFILES:
            points = curves[title.name][profile.name]
            print(f"  {profile.name:9s} {ascii_curve(points)}")

    summary = suite_bd_rates(curves)
    print()
    print(format_table(
        ["Comparison", "BD-rate %", "Paper"],
        [
            ["VCU-VP9 vs libx264", round(summary.vcu_vp9_vs_libx264, 1), "~-30"],
            ["VCU-H264 vs libx264", round(summary.vcu_h264_vs_libx264, 1), "~+11.5"],
            ["VCU-VP9 vs libvpx", round(summary.vcu_vp9_vs_libvpx, 1), "~+18"],
        ],
        title="BD-rate summary (3-title subset)",
    ))
    print("\nNegative BD-rate = fewer bits at equal quality.  The headline:")
    print("hardware VP9 beats software H.264 by a wide margin even though")
    print("it trails software VP9 -- trading per-stream quality for 20-33x")
    print("perf/TCO is the paper's core bet.")


if __name__ == "__main__":
    main()
