#!/usr/bin/env python3
"""Quickstart: encode a vbench title with all four encoders.

Generates the synthetic `desktop` clip, encodes it with the two software
baselines (libx264/libvpx analogues) and the two VCU hardware profiles,
verifies the encode round-trips through the decoder bit-exactly, and
prints an RD comparison -- the smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ALL_PROFILES, encode_video, materialize, vbench_video
from repro.codec.decoder import decode_chunk
from repro.metrics import format_table


def main() -> None:
    title = vbench_video("desktop")
    video = materialize(title, frame_count=8, seed=1)
    print(f"encoding {title.name!r}: {len(video)} frames at "
          f"{video.nominal.name} ({video.fps:g} FPS), proxy plane "
          f"{video.frames[0].proxy_shape}")

    rows = []
    for profile in ALL_PROFILES:
        chunk = encode_video(video, profile, qp=32)

        # Round-trip check: the decoder must reproduce the encoder's
        # reconstruction exactly (the determinism the paper's golden-task
        # fault screening relies on).
        planes = decode_chunk(chunk, profile)
        max_err = max(
            float(np.max(np.abs(p - f.recon)))
            for p, f in zip(planes, chunk.frames)
        )
        assert max_err == 0.0, "decoder mismatch"

        rows.append([
            profile.name,
            profile.implementation,
            round(chunk.psnr, 2),
            round(chunk.bitrate_bps / 1e6, 2),
            round(chunk.bits_per_pixel, 3),
            "ok",
        ])

    print()
    print(format_table(
        ["Encoder", "Impl", "PSNR dB", "Mbps @1080p", "bits/px", "Round-trip"],
        rows, title="QP 32 operating points",
    ))
    print("\nNote: VP9 profiles spend fewer bits at similar PSNR, and the")
    print("VCU profiles spend slightly more than their software twins")
    print("(no trellis-style rate shaping) -- the Figure 7 relationships.")


if __name__ == "__main__":
    main()
