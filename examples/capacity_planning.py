#!/usr/bin/env python3
"""Capacity planning with the Appendix A system-balance models.

Answers the questions the paper's Appendix A answers, for an arbitrary
deployment: how many Gpixel/s can one host's network feed, how many VCUs
is that, how much device DRAM do the worst-case encoding modes pin, and
what does the host itself have to supply -- then sweeps NIC speed to show
where the balance point moves for a future host.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import dataclasses

from repro.balance import (
    NetworkBalance,
    fleet_dram_requirement,
    host_resource_table,
    mot_footprint_mib,
    sot_footprint_mib,
    vcu_ceiling_per_host,
)
from repro.metrics import format_table
from repro.vcu.spec import EncodingMode, HostSpec


def main() -> None:
    balance = NetworkBalance()
    print(f"network transcode limit: raw {balance.raw_limit_gpix_s:.0f} Gpixel/s, "
          f"provisioned {balance.effective_limit_gpix_s:.0f} Gpixel/s per host")
    print(f"VCU ceilings per host: realtime "
          f"{vcu_ceiling_per_host(EncodingMode.LOW_LATENCY_ONE_PASS)}, "
          f"offline two-pass "
          f"{vcu_ceiling_per_host(EncodingMode.OFFLINE_TWO_PASS)} "
          f"(deployed: 20 -- conservative on purpose)\n")

    print(f"device DRAM footprints at 2160p offline: "
          f"MOT {mot_footprint_mib():.0f} MiB, SOT {sot_footprint_mib():.0f} MiB")
    for mode in (EncodingMode.LOW_LATENCY_ONE_PASS, EncodingMode.OFFLINE_TWO_PASS):
        req = fleet_dram_requirement(mode)
        print(f"  {mode.value:24s}: {req.concurrent_streams:5.0f} streams, "
              f"{req.required_gib:5.0f} GiB needed vs {req.provided_gib_8g:.0f} GiB "
              f"attached -> fits 8 GiB: {req.fits_8gib}, fits 4 GiB: {req.fits_4gib}")

    print()
    rows = [
        [r.use, round(r.logical_cores, 1), round(r.dram_bandwidth_gbps)]
        for r in host_resource_table(153.0)
    ]
    print(format_table(
        ["Use", "Logical cores", "DRAM Gbps"],
        rows, title="Table 2: host resources at 153 Gpixel/s",
    ))

    print("\nNIC sweep: where does the next host generation land?")
    sweep_rows = []
    for nic_gbps in (50, 100, 200, 400):
        host = dataclasses.replace(HostSpec(), network_bandwidth_bits=nic_gbps * 1e9)
        limit = NetworkBalance(host=host).effective_limit_gpix_s
        realtime = vcu_ceiling_per_host(EncodingMode.LOW_LATENCY_ONE_PASS, host=host)
        total = host_resource_table(limit)[-1]
        sweep_rows.append([
            f"{nic_gbps} Gbps", round(limit), realtime,
            round(total.logical_cores), round(total.dram_bandwidth_gbps),
        ])
    print(format_table(
        ["NIC", "Gpixel/s target", "Realtime VCU ceiling", "Host cores needed",
         "Host DRAM Gbps needed"],
        sweep_rows,
    ))
    print("\nAt 400 Gbps the host itself (cores, memory bandwidth) becomes")
    print("the binding constraint before the accelerators do -- the kind of")
    print("balance shift Appendix A is designed to expose early.")


if __name__ == "__main__":
    main()
