#!/usr/bin/env python3
"""A platform day through the fleet control plane, outage included.

The flagship robustness drill of ``repro.control``: one (compressed)
diurnal day of live + upload + batch traffic over a four-region fleet.
Mid-day, us-east — the largest region — goes dark for a fifth of the
day, straddling the upload peak. The control plane drains the lost
region to the survivors, admission sheds batch (never live) while
capacity is short, the capacity autoscaler grows the surviving sites,
and the region rejoins. Both arms run: the outage day and the healthy
control day, so the scorecard deltas isolate what the outage cost.

Run:  python examples/global_platform_day.py
"""

from __future__ import annotations

from repro.control import ScenarioConfig, run_global_platform_day

DAY_SECONDS = 1800.0
SEED = 11

SHOW = (
    "jobs.submitted", "jobs.done", "jobs.shed",
    "class.live.completion_rate", "class.upload.completion_rate",
    "class.batch.completion_rate",
    "class.batch.shed", "class.upload.shed", "class.live.shed",
    "class.live.queue_p99", "class.batch.queue_p99",
    "failover.routed", "failover.drained_running",
    "autoscale.actions", "autoscale.peak_slots",
    "dead_letter.count", "conservation.ok",
)


def run_arm(outage: bool):
    config = ScenarioConfig(day_seconds=DAY_SECONDS, outage=outage)
    return run_global_platform_day(config, seed=SEED)


def main() -> None:
    print(f"global platform day: {DAY_SECONDS:g} s compressed, seed {SEED}")
    arms = {"healthy day": run_arm(False), "us-east outage": run_arm(True)}
    width = max(len(key) for key in SHOW)
    header = " ".join(f"{name:>16}" for name in arms)
    print(f"{'scorecard key':{width}} {header}")
    for key in SHOW:
        row = " ".join(
            f"{arms[name].scorecard[key]!s:>16}" for name in arms
        )
        print(f"{key:{width}} {row}")
    outage_card = arms["us-east outage"].scorecard
    assert outage_card["conservation.ok"], "a job went missing"
    assert outage_card["class.live.shed"] == 0, "live must shed last"
    print("\nevery submitted job reached exactly one terminal state; "
          "shedding stayed class-ordered (batch first, live never).")


if __name__ == "__main__":
    main()
